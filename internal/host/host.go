// Package host assembles the paper's testbed (§3 setup): one receiver
// machine — NIC, PCIe link, IOMMU, memory controller, receiver cores —
// fed by N sender machines across a fabric, running a congestion-
// controlled transport, with an optional STREAM antagonist contending the
// receiver's memory bus.
//
// The Testbed it builds is the unit every experiment sweeps: construct
// with a Config, Run for a warmup + measurement window, read Results.
package host

import (
	"fmt"
	"io"
	"math"

	"hic/internal/antagonist"
	"hic/internal/cpu"
	"hic/internal/fabric"
	"hic/internal/iommu"
	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/nic"
	"hic/internal/pcie"
	"hic/internal/pkt"
	"hic/internal/sender"
	"hic/internal/sim"
	"hic/internal/stats"
	"hic/internal/telemetry"
	"hic/internal/trace"
	"hic/internal/transport"
	"hic/internal/wire"
)

// CCFactory builds one congestion controller per connection.
type CCFactory func() (transport.CongestionControl, error)

// Config describes a complete testbed.
type Config struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// Senders is the number of sender machines (paper: 40).
	Senders int
	// ReceiverThreads is the number of receiver threads = Rx queues =
	// dedicated cores (the x-axis of Figures 3 and 4).
	ReceiverThreads int
	// RxRegionBytes is the per-thread Rx buffer-pool registration
	// (the x-axis of Figure 5; paper baseline 12 MB).
	RxRegionBytes uint64
	// Hugepages selects 2 MB payload mappings (true, the default) or
	// 4 KB mappings (Figure 4's ablation).
	Hugepages bool
	// AntagonistCores runs the STREAM antagonist on that many cores
	// (the x-axis of Figure 6).
	AntagonistCores int
	// CPUCores caps the processing cores available to the stack
	// independently of ReceiverThreads (0 = one core per thread). With
	// fewer cores than threads the host is software-bottlenecked — the
	// congestion mode §4 says dynamic core scaling solves.
	CPUCores int
	// InitialActiveCores starts processing with fewer cores than
	// CPUCores allows (0 = all); combined with DynamicCoreScaling it
	// demonstrates the §4 software-congestion remedy.
	InitialActiveCores int
	// DynamicCoreScaling enables a controller that adds a processing
	// core whenever packet queues stay deep, and returns cores when
	// they drain.
	DynamicCoreScaling bool
	// VictimConnGbps, when > 0, creates an asymmetric workload: the
	// last queue's connections are well-behaved tenants app-limited to
	// this rate each, while every other queue saturates. Paired with
	// NIC.PerQueueBuffers it demonstrates what buffer partitioning buys:
	// the aggressors' blind-zone overload stops dropping the victim's
	// packets.
	VictimConnGbps float64
	// SenderHostModel routes each connection's packets through a full
	// sender-side TX path (bounded NIC queue, DMA from sender memory,
	// backpressure) instead of injecting directly into the fabric —
	// footnote 1's sender/receiver asymmetry made runnable.
	SenderHostModel bool
	// SenderAntagonistCores contends every sender's memory bus (only
	// meaningful with SenderHostModel).
	SenderAntagonistCores int
	// AntagonistRemoteNUMA places the STREAM antagonist on the other
	// NUMA node: its traffic hits a second memory controller, leaving
	// the NIC-local one uncontended — the §4 "coordinated allocation"
	// response of scheduling memory-hungry work away from the NIC's
	// node.
	AntagonistRemoteNUMA bool
	// BurstDuty, when in (0,1), makes the workload bursty: all
	// connections are active for BurstDuty of each BurstPeriod and idle
	// for the rest. Average link utilization then sits near
	// BurstDuty × achieved rate while drops concentrate at burst onsets.
	BurstDuty   float64
	BurstPeriod sim.Duration

	IOMMU      iommu.Config
	NIC        nic.Config
	PCIe       pcie.Config
	Memory     mem.Config
	CPU        cpu.Config
	Fabric     fabric.Config
	Transport  transport.Config
	Antagonist antagonist.Config

	// CC builds the congestion controller for each connection.
	CC CCFactory
	// InitialCwnd seeds each connection's window.
	InitialCwnd float64
}

// DefaultConfig returns the paper's baseline setup for the given receiver
// thread count with the IOMMU enabled: 40 senders, 16 KB reads over 4 KB
// MTU, 12 MB hugepage-backed Rx regions per thread, Swift-like targets.
// The CC field must still be set by the caller (swift / dctcp / fixed).
func DefaultConfig(threads int) Config {
	return Config{
		Seed:            1,
		Senders:         40,
		ReceiverThreads: threads,
		RxRegionBytes:   12 << 20,
		Hugepages:       true,
		IOMMU:           iommu.DefaultConfig(),
		NIC:             nic.DefaultConfig(threads),
		PCIe:            pcie.DefaultConfig(),
		Memory:          mem.DefaultConfig(),
		CPU:             cpu.DefaultConfig(threads),
		Fabric:          fabric.DefaultConfig(),
		Transport:       transport.DefaultConfig(),
		Antagonist:      antagonist.DefaultConfig(),
		InitialCwnd:     1,
	}
}

func (c Config) validate() error {
	if c.Senders <= 0 {
		return fmt.Errorf("host: Senders must be positive")
	}
	if c.Senders >= 1<<16 {
		return fmt.Errorf("host: Senders must fit in 16 bits")
	}
	if c.ReceiverThreads <= 0 || c.ReceiverThreads >= 1<<16 {
		return fmt.Errorf("host: ReceiverThreads outside [1, 65535]")
	}
	if c.RxRegionBytes == 0 {
		return fmt.Errorf("host: RxRegionBytes must be positive")
	}
	if c.AntagonistCores < 0 {
		return fmt.Errorf("host: negative AntagonistCores")
	}
	if c.CC == nil {
		return fmt.Errorf("host: CC factory is required")
	}
	if c.InitialCwnd <= 0 {
		return fmt.Errorf("host: InitialCwnd must be positive")
	}
	if c.BurstDuty < 0 || c.BurstDuty >= 1 {
		if c.BurstDuty != 0 {
			return fmt.Errorf("host: BurstDuty %v outside (0,1)", c.BurstDuty)
		}
	}
	if c.BurstDuty > 0 && c.BurstPeriod <= 0 {
		return fmt.Errorf("host: BurstDuty set without BurstPeriod")
	}
	return nil
}

// regionLayout is the per-thread address-space plan. Payload regions are
// large and accessed with no locality (one flow per sender per thread);
// the control structures (descriptor ring, completion ring, ACK buffers)
// are small 4 KB-mapped rings that stay hot.
type regionLayout struct {
	payloadBase uint64
	payloadSize uint64
	descBase    uint64 // Rx descriptor ring
	complBase   uint64 // completion ring
	txDescBase  uint64 // Tx descriptor ring
	ackBase     uint64 // ACK buffer pool
}

// Control-structure footprint per thread, in 4 KB pages. Together with
// the hugepage count of a 12 MB payload region (6 entries) this puts the
// per-thread IOTLB working set at 16 entries, so the registered entries
// cross the 128-entry IOTLB right above 8 threads — the knee of Figure 3.
const (
	descRingPages   = 4
	complRingPages  = 2
	txDescRingPages = 2
	ackRingPages    = 2
	pageSize        = 4096
	// threadStride spaces thread regions far apart so mappings never
	// collide regardless of region size.
	threadStride = uint64(1) << 36
)

func layoutFor(queue int, regionBytes uint64) regionLayout {
	base := uint64(queue+1) * threadStride
	ctl := base + alignUp(regionBytes, 1<<21)
	return regionLayout{
		payloadBase: base,
		payloadSize: regionBytes,
		descBase:    ctl,
		complBase:   ctl + descRingPages*pageSize,
		txDescBase:  ctl + (descRingPages+complRingPages)*pageSize,
		ackBase:     ctl + (descRingPages+complRingPages+txDescRingPages)*pageSize,
	}
}

func alignUp(v, to uint64) uint64 { return (v + to - 1) / to * to }

// planner implements nic.Planner over the thread layouts.
type planner struct {
	rng       *sim.RNG
	layouts   []regionLayout
	descIdx   []uint64
	complIdx  []uint64
	txDescIdx []uint64
	ackIdx    []uint64
}

func newPlanner(rng *sim.RNG, threads int, regionBytes uint64) *planner {
	p := &planner{
		rng:       rng,
		layouts:   make([]regionLayout, threads),
		descIdx:   make([]uint64, threads),
		complIdx:  make([]uint64, threads),
		txDescIdx: make([]uint64, threads),
		ackIdx:    make([]uint64, threads),
	}
	for q := 0; q < threads; q++ {
		p.layouts[q] = layoutFor(q, regionBytes)
	}
	return p
}

// poolSlot returns a random 64-byte slot within an n-page pool starting
// at base. The stack is a pool allocator (as in SNAP), not a dense ring:
// per-packet metadata scatters across the pool's pages, so every
// translation — not just the payload's — contends for IOTLB entries.
// With one flow per sender per thread, consecutive packets of a queue
// belong to different flows and hence different pool slots.
func (p *planner) poolSlot(base uint64, pages, need int) uint64 {
	span := uint64(pages) * pageSize
	n := (need + 63) / 64 * 64
	if uint64(n) >= span {
		return base
	}
	return base + p.rng.Uint64n((span-uint64(n))/64+1)*64
}

// PlanRx places the payload at a uniformly random 4 KB slot of the
// thread's region, offset by half a page so a 4 KB-MTU packet straddles
// two 4 KB pages (the paper's observation that disabling hugepages means
// fetching two pages per packet) while staying inside one 2 MB hugepage.
// Descriptor and completion entries come from the thread's metadata
// pools.
func (p *planner) PlanRx(queue, payloadBytes int) (uint64, uint64, uint64) {
	l := p.layouts[queue]
	slots := l.payloadSize / pageSize
	payload := l.payloadBase + p.rng.Uint64n(slots-1)*pageSize + pageSize/2
	desc := p.poolSlot(l.descBase, descRingPages, 64)
	compl := p.poolSlot(l.complBase, complRingPages, 64)
	return payload, desc, compl
}

// PlanTx draws the TX descriptor and the ACK buffer from their pools.
func (p *planner) PlanTx(queue, payloadBytes int) (uint64, uint64) {
	l := p.layouts[queue]
	return p.poolSlot(l.txDescBase, txDescRingPages, 64),
		p.poolSlot(l.ackBase, ackRingPages, payloadBytes)
}

// Testbed is a fully wired receiver + senders simulation.
type Testbed struct {
	Engine   *sim.Engine
	Registry *metrics.Registry

	Memory       *mem.Controller
	RemoteMemory *mem.Controller // second NUMA node (nil unless used)
	IOMMU        *iommu.IOMMU
	Link         *pcie.Link
	NIC          *nic.NIC
	CPU          *cpu.Pool
	Fabric       *fabric.Network
	Receiver     *transport.Receiver
	Stream       *antagonist.Stream
	Conns        []*transport.Conn
	Senders      []*sender.Host // non-nil when SenderHostModel is set

	// Pool is the run's packet free list. The testbed owns the release
	// points for packets that survive to the application: data packets
	// are released after transport delivery, acks after the owning
	// connection consumes them. The NIC and fabric release the packets
	// they drop themselves.
	Pool *pkt.Pool

	cfg     Config
	started bool
}

// EnableTrace samples the load-bearing state of the testbed every period
// into a trace.Recorder: instantaneous goodput, NIC buffer occupancy,
// switch port queue, aggregate congestion window, memory load factor and
// cumulative drops. Call before Run.
func (t *Testbed) EnableTrace(period sim.Duration) *trace.Recorder {
	rec := trace.NewRecorder()
	var prevGoodput uint64
	t.Engine.Every(period, func() {
		now := t.Engine.Now()
		goodput := t.Receiver.GoodputBytes()
		gbps := float64(goodput-prevGoodput) * 8 / period.Seconds() / 1e9
		prevGoodput = goodput
		var cwnd float64
		for _, c := range t.Conns {
			cwnd += c.CC().Cwnd()
		}
		rec.Record("goodput_gbps", now, gbps)
		rec.Record("nic_buffer_kb", now, float64(t.NIC.BufferUsed())/1024)
		rec.Record("port_queue_kb", now, float64(t.Fabric.PortQueueBytes())/1024)
		rec.Record("cwnd_sum_pkts", now, cwnd)
		rec.Record("mem_load_factor", now, t.Memory.LoadFactor())
		rec.Record("drops_total", now, float64(t.NIC.Stats().Drops))
	})
	return rec
}

// EnableSpans turns on pipeline-wide telemetry: head-based span sampling
// at the given rate (every sampled packet records per-stage enter/exit
// timestamps from NIC admission through CPU processing) and a drop-
// attribution ledger that classifies every NIC tail-drop by its root
// cause from the interconnect state at drop time. The tracer's RNG is
// forked from the engine's, so the same seed and rate always sample the
// same packets. Call before Run; the returned Run owns both halves and
// feeds the exporters in internal/telemetry.
func (t *Testbed) EnableSpans(rate float64) *telemetry.Run {
	tr := telemetry.NewTracer(t.Engine.RNG().Fork(), rate)
	led := telemetry.NewDropLedger(func() telemetry.DropContext {
		return telemetry.DropContext{
			MemLoadFactor:  t.Memory.LoadFactor(),
			IOTLBMissRate:  t.IOMMU.RecentMissRate(),
			MemQueueDelay:  t.Memory.QueueDelay(),
			CreditStallAge: t.Link.OldestWaiterAge(),
			BufferBytes:    t.NIC.BufferUsed(),
		}
	})
	t.NIC.SetTelemetry(tr, led)
	return &telemetry.Run{Tracer: tr, Drops: led}
}

// flowID packs (sender, queue) into the packet flow field.
func flowID(sender, queue int) uint32 { return uint32(sender)<<16 | uint32(queue) }

func flowSender(flow uint32) int { return int(flow >> 16) }

// Runtime carries pre-allocated simulation state for reuse across runs:
// the engine (with its event free list), the packet pool (with its free
// list), and the metrics registry. The worker-pool arenas in
// internal/runner own one Runtime's worth of state per worker; nil
// fields mean "create fresh", so the zero Runtime reproduces New's
// historical behavior exactly.
type Runtime struct {
	Engine   *sim.Engine
	Registry *metrics.Registry
	Pool     *pkt.Pool
}

// New builds and wires a testbed with fresh per-run state.
func New(cfg Config) (*Testbed, error) {
	return NewWith(Runtime{}, cfg)
}

// NewWith builds and wires a testbed on the given runtime. A non-nil
// engine is Reset to the config's seed and a non-nil registry is
// Zeroed, so a testbed built on a dirty arena behaves bit-identically
// to one built on fresh state (the golden determinism tests prove
// this). The packet pool is used as-is: recycled packets are fully
// zeroed on reuse, so a warm free list is invisible to the simulation.
//
// One caveat of registry reuse: metric names registered by an earlier
// run on the same arena remain registered (at zero) even if this run's
// configuration never touches them. Results reads only well-known
// names, so measurements are unaffected; callers that Dump or Snapshot
// a registry for export should build on a fresh Runtime.
func NewWith(rt Runtime, cfg Config) (*Testbed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engine := rt.Engine
	if engine == nil {
		engine = sim.NewEngine(cfg.Seed)
	} else {
		engine.Reset(cfg.Seed)
	}
	registry := rt.Registry
	if registry == nil {
		registry = metrics.NewRegistry()
	} else {
		registry.Zero()
	}
	pool := rt.Pool
	if pool == nil {
		pool = pkt.NewPool()
	}
	t := &Testbed{
		Engine:   engine,
		Registry: registry,
		Pool:     pool,
		cfg:      cfg,
	}
	var err error
	if t.Memory, err = mem.New(t.Engine, t.Registry, cfg.Memory); err != nil {
		return nil, err
	}
	if t.IOMMU, err = iommu.New(t.Engine, t.Memory, t.Registry, cfg.IOMMU); err != nil {
		return nil, err
	}
	if t.Link, err = pcie.New(t.Engine, t.Registry, cfg.PCIe); err != nil {
		return nil, err
	}
	antagMem := t.Memory
	if cfg.AntagonistRemoteNUMA {
		// The far NUMA node has its own controller; its registry
		// metrics are namespaced by a separate registry to keep the
		// NIC-local measurements clean.
		if t.RemoteMemory, err = mem.New(t.Engine, metrics.NewRegistry(), cfg.Memory); err != nil {
			return nil, err
		}
		antagMem = t.RemoteMemory
	}
	if t.Stream, err = antagonist.New(antagMem, cfg.Antagonist); err != nil {
		return nil, err
	}

	// Register the per-thread regions with the IOMMU (loose mode: fixed
	// upfront registration, alive for the whole run).
	if cfg.IOMMU.Enabled {
		ps := iommu.Page2M
		if !cfg.Hugepages {
			ps = iommu.Page4K
		}
		for q := 0; q < cfg.ReceiverThreads; q++ {
			l := layoutFor(q, cfg.RxRegionBytes)
			if err := t.IOMMU.MapRegion(l.payloadBase, l.payloadSize, ps); err != nil {
				return nil, fmt.Errorf("host: mapping payload region: %w", err)
			}
			ctlBytes := uint64(descRingPages+complRingPages+txDescRingPages+ackRingPages) * pageSize
			if err := t.IOMMU.MapRegion(l.descBase, ctlBytes, iommu.Page4K); err != nil {
				return nil, fmt.Errorf("host: mapping control region: %w", err)
			}
		}
	}

	pl := newPlanner(t.Engine.RNG().Fork(), cfg.ReceiverThreads, cfg.RxRegionBytes)

	// Receiver transport endpoint: acks leave through the NIC TX path
	// and ride the fabric back to the owning sender.
	t.Receiver, err = transport.NewReceiver(t.Engine, t.Registry, cfg.Transport, func(ack *pkt.Packet) {
		t.NIC.Transmit(ack, func(p *pkt.Packet) {
			t.Fabric.SendToSender(flowSender(p.Flow), p)
		})
	})
	if err != nil {
		return nil, err
	}
	t.Receiver.SetPool(t.Pool)

	// CPU pool: processing completes → transport delivery + descriptor
	// replenish (host software returning buffers to the ring). Delivery
	// is where a data packet dies: once the receiver has consumed it and
	// the descriptor is back on the ring, the testbed releases it.
	cpuCfg := cfg.CPU
	if cfg.CPUCores > 0 {
		cpuCfg.Cores = cfg.CPUCores
	}
	t.CPU, err = cpu.New(t.Engine, t.Registry, t.Memory, cpuCfg, func(p *pkt.Packet) {
		t.Receiver.Deliver(p)
		t.NIC.ReplenishDescriptors(p.Queue, 1)
		t.Pool.Release(p)
	})
	if err != nil {
		return nil, err
	}
	if cfg.InitialActiveCores > 0 {
		t.CPU.SetActiveCores(cfg.InitialActiveCores)
	}
	if cfg.DynamicCoreScaling {
		// Scheduler tick: deep sustained queues get another core; near-
		// empty queues release one.
		t.Engine.Every(100*sim.Microsecond, func() {
			depth := t.CPU.QueuedPackets()
			active := t.CPU.ActiveCores()
			switch {
			case depth > 8*active && active < t.CPU.Cores():
				t.CPU.SetActiveCores(active + 1)
			case depth < active && active > 1:
				t.CPU.SetActiveCores(active - 1)
			}
		})
	}

	t.NIC, err = nic.New(t.Engine, t.Registry, t.Link, t.IOMMU, t.Memory, pl, cfg.NIC,
		func(p *pkt.Packet) { t.CPU.Enqueue(p) })
	if err != nil {
		return nil, err
	}
	t.NIC.SetPool(t.Pool)

	t.Fabric, err = fabric.New(t.Engine, t.Registry, cfg.Senders, cfg.Fabric,
		func(p *pkt.Packet) { t.NIC.Receive(p) },
		func(sender int, p *pkt.Packet) { t.ackToConn(p) })
	if err != nil {
		return nil, err
	}
	t.Fabric.SetPool(t.Pool)

	// Optional sender-side hosts: the TX datapath with backpressure.
	emitFor := func(s int) func(int, *pkt.Packet) {
		return func(sndr int, p *pkt.Packet) { t.Fabric.SendToReceiver(sndr, p) }
	}
	if cfg.SenderHostModel {
		for s := 0; s < cfg.Senders; s++ {
			s := s
			sh, err := sender.New(t.Engine, metrics.NewRegistry(), sender.DefaultConfig(),
				func(p *pkt.Packet) { t.Fabric.SendToReceiver(s, p) })
			if err != nil {
				return nil, err
			}
			if cfg.SenderAntagonistCores > 0 {
				ant, err := antagonist.New(sh.Memory(), cfg.Antagonist)
				if err != nil {
					return nil, err
				}
				ant.SetCores(cfg.SenderAntagonistCores)
			}
			t.Senders = append(t.Senders, sh)
		}
		emitFor = func(s int) func(int, *pkt.Packet) {
			return func(_ int, p *pkt.Packet) { t.Senders[s].Send(p) }
		}
	}

	// One connection per (sender, receiver thread) pair.
	for s := 0; s < cfg.Senders; s++ {
		for q := 0; q < cfg.ReceiverThreads; q++ {
			cc, err := cfg.CC()
			if err != nil {
				return nil, fmt.Errorf("host: building CC: %w", err)
			}
			tcfg := cfg.Transport
			if cfg.VictimConnGbps > 0 && q == cfg.ReceiverThreads-1 {
				tcfg.AppRateLimit = sim.BitsPerSecond(cfg.VictimConnGbps * 1e9)
			}
			conn, err := transport.NewConn(t.Engine, t.Registry, tcfg, cc,
				flowID(s, q), s, q, emitFor(s))
			if err != nil {
				return nil, err
			}
			conn.SetPool(t.Pool)
			t.Conns = append(t.Conns, conn)
		}
	}

	t.Stream.SetCores(cfg.AntagonistCores)

	if cfg.BurstDuty > 0 {
		on := sim.Duration(float64(cfg.BurstPeriod) * cfg.BurstDuty)
		t.Engine.Every(cfg.BurstPeriod, func() {
			for _, c := range t.Conns {
				c.SetActive(true)
			}
			t.Engine.After(on, func() {
				for _, c := range t.Conns {
					c.SetActive(false)
				}
			})
		})
	}
	return t, nil
}

// connFor finds the connection owning a flow.
func (t *Testbed) ackToConn(a *pkt.Packet) {
	s := flowSender(a.Flow)
	q := int(a.Flow & 0xffff)
	idx := s*t.cfg.ReceiverThreads + q
	if idx < 0 || idx >= len(t.Conns) {
		panic(fmt.Sprintf("host: ack for unknown flow %#x", a.Flow))
	}
	t.Conns[idx].OnAck(a)
	// Ack consumption is where an ack dies; the testbed owns it here.
	t.Pool.Release(a)
}

// Start begins transmission, staggering connection starts across one
// millisecond: hundreds of connections emitting their initial windows
// simultaneously would be a synchronized incast burst that collapses
// every window to the floor before the experiment begins.
func (t *Testbed) Start() {
	rng := t.Engine.RNG().Fork()
	for _, c := range t.Conns {
		c := c
		t.Engine.After(sim.Duration(rng.Uint64n(uint64(sim.Millisecond))), c.Start)
	}
}

// EnableCapture taps the receiver NIC and writes every arriving packet
// to w in the wire capture format. The returned writer reports how many
// records were captured; write errors surface through the returned
// error channel-free API by panicking (a capture target failing mid-
// simulation is unrecoverable for the experiment).
func (t *Testbed) EnableCapture(w io.Writer) *wire.Writer {
	cw := wire.NewWriter(w)
	t.NIC.SetTap(func(p *pkt.Packet) {
		if err := cw.WritePacket(p); err != nil {
			panic(fmt.Sprintf("host: capture write failed: %v", err))
		}
	})
	return cw
}

// Results summarizes one measurement window in the units the paper plots.
type Results struct {
	Duration sim.Duration

	// AppThroughputGbps is distinct application payload delivered per
	// second — the y-axis of Figures 3–6's throughput panels.
	AppThroughputGbps float64
	// DropRatePct is host drops over packets arriving at the host.
	DropRatePct float64
	// IOTLBMissesPerPacket is IOTLB misses per delivered data packet.
	IOTLBMissesPerPacket float64
	// MemoryBandwidthGBps is total achieved memory bandwidth (Figure 6).
	MemoryBandwidthGBps float64
	// LinkUtilization is wire bytes arriving at the host over capacity.
	LinkUtilization float64

	HostDelayP50 sim.Duration
	HostDelayP99 sim.Duration
	HostDelayMax sim.Duration

	// Read latency: issue → last byte acked for 16 KB reads (the
	// application-level tail the paper's introduction motivates).
	ReadLatencyP50  sim.Duration
	ReadLatencyP99  sim.Duration
	ReadLatencyP999 sim.Duration

	// FairnessIndex is Jain's index over per-connection goodput in the
	// measurement window (1 = perfectly fair).
	FairnessIndex float64

	RxPackets   uint64
	Drops       uint64
	Retransmits uint64
	SwitchDrops uint64
	Goodput     uint64
	Reads       uint64
	DMAFaults   uint64
}

// measureBaseline captures the cumulative-counter snapshot taken at the
// start of a measurement window so harvest can compute window deltas.
type measureBaseline struct {
	memStart sim.Time
	io0      uint64
	cpu0     float64
	flow0    map[uint32]uint64
}

// beginMeasure runs the (discarded) warmup, resets the window counters,
// and snapshots the cumulative series harvest will diff against.
func (t *Testbed) beginMeasure(warmup sim.Duration) measureBaseline {
	if !t.started {
		t.Start()
		t.started = true
	}
	t.Engine.Run(t.Engine.Now().Add(warmup))
	t.Registry.ResetAll()
	return measureBaseline{
		memStart: t.Engine.Now(),
		io0:      t.Memory.IOServedBytes(),
		cpu0:     t.Memory.CPUServedBytes(),
		flow0:    t.Receiver.GoodputByFlow(),
	}
}

// Run executes warmup (discarded) then a measurement window and returns
// its Results. Calling Run again continues the same simulation with a
// fresh measurement window (pass zero warmup for back-to-back bins).
func (t *Testbed) Run(warmup, measure sim.Duration) Results {
	b := t.beginMeasure(warmup)
	t.Engine.Run(t.Engine.Now().Add(measure))
	return t.harvest(b, measure)
}

// harvest summarizes the window that began at b and lasted measure. The
// engine must already have advanced to the end of the window.
func (t *Testbed) harvest(b measureBaseline, measure sim.Duration) Results {
	memStart, io0, cpu0, flow0 := b.memStart, b.io0, b.cpu0, b.flow0

	res := Results{Duration: measure}
	sec := measure.Seconds()

	goodput := t.Receiver.GoodputBytes()
	res.Goodput = goodput
	res.AppThroughputGbps = float64(goodput) * 8 / sec / 1e9
	res.Reads = t.Receiver.CompletedReads()

	ns := t.NIC.Stats()
	res.RxPackets = ns.RxPackets
	res.Drops = ns.Drops
	arrived := ns.RxPackets + ns.Drops
	if arrived > 0 {
		res.DropRatePct = float64(ns.Drops) / float64(arrived) * 100
	}
	res.LinkUtilization = float64(ns.RxBytes+ns.DropBytes) * 8 / sec /
		float64(t.cfg.Fabric.AccessLinkRate)

	is := t.IOMMU.Stats()
	res.DMAFaults = is.Faults
	delivered := t.CPU.Processed()
	if delivered > 0 {
		res.IOTLBMissesPerPacket = float64(is.Misses) / float64(delivered)
	}

	res.MemoryBandwidthGBps = t.Memory.TotalBandwidthGBps(memStart, io0, cpu0)

	h := t.Registry.Histogram("transport.host.delay.ns")
	res.HostDelayP50 = sim.Duration(h.Quantile(0.5))
	res.HostDelayP99 = sim.Duration(h.Quantile(0.99))
	res.HostDelayMax = sim.Duration(h.Max())

	r := t.Registry.Histogram("transport.read.latency.ns")
	res.ReadLatencyP50 = sim.Duration(r.Quantile(0.5))
	res.ReadLatencyP99 = sim.Duration(r.Quantile(0.99))
	res.ReadLatencyP999 = sim.Duration(r.Quantile(0.999))

	res.Retransmits = t.Registry.Counter("transport.retx.packets").Value()
	res.SwitchDrops = t.Fabric.SwitchDrops()

	perFlow := make([]float64, 0, len(t.Conns))
	flow1 := t.Receiver.GoodputByFlow()
	for _, c := range t.Conns {
		perFlow = append(perFlow, float64(flow1[c.Flow()]-flow0[c.Flow()]))
	}
	res.FairnessIndex = stats.JainIndex(perFlow)
	return res
}

// StopRule configures the steady-state sequential stopping test used by
// RunAdaptive. The measurement window is executed in sub-windows of
// Window; after MinWindows sub-windows the run stops as soon as the
// standard error of both the per-window goodput rate and the per-window
// drop fraction falls below RelTol of their running means (with a small
// absolute floor so an all-zero drop series converges immediately).
type StopRule struct {
	// Window is the sub-window length. Zero disables early stopping.
	Window sim.Duration
	// MinWindows is the minimum number of sub-windows observed before
	// the convergence test may fire (also the warm statistics floor).
	MinWindows int
	// RelTol is the relative standard-error threshold, e.g. 0.02 stops
	// once the goodput-rate mean is known to ~2% (1 s.e.).
	RelTol float64
}

// DefaultStopRule is tuned for fleet/sweep windows of a few ms to tens
// of ms: 1 ms sub-windows, at least 3 of them, 2.5% standard error.
// Three windows is the floor at which the standard-error estimate is
// meaningful at all; the RelTol threshold, not the window count,
// carries the accuracy burden, and the audit pass verifies the result
// empirically.
func DefaultStopRule() StopRule {
	return StopRule{Window: sim.Millisecond, MinWindows: 3, RelTol: 0.025}
}

// Fit shrinks (never grows) Window so at least 2×MinWindows sub-windows
// fit the measure — without it, fleet measures shorter than
// Window×(MinWindows+1) silently disable early stopping. The result is
// a pure function of (rule, measure), so for a given scenario the
// fitted rule — and therefore the run — stays deterministic. A
// disabled rule stays disabled.
func (r StopRule) Fit(measure sim.Duration) StopRule {
	if r.Window <= 0 || r.RelTol <= 0 || r.MinWindows <= 0 || measure <= 0 {
		return r
	}
	if maxW := measure / sim.Duration(2*r.MinWindows); r.Window > maxW {
		r.Window = maxW
	}
	return r
}

// Align snaps Window to a whole number of burst periods for duty-cycled
// workloads. Sub-periodic windows sample alternating burst and idle
// phases, so their means oscillate and the convergence test never
// fires; period-aligned windows see statistically identical copies of
// the cycle, so two of them suffice for the comparison (MinWindows is
// clamped accordingly). No-op for non-bursty configs (period 0) or a
// disabled rule.
func (r StopRule) Align(period sim.Duration) StopRule {
	if r.Window <= 0 || r.RelTol <= 0 || period <= 0 {
		return r
	}
	if r.Window < period {
		r.Window = period
	} else if rem := r.Window % period; rem != 0 {
		r.Window -= rem
	}
	if r.MinWindows > 2 {
		r.MinWindows = 2
	}
	return r
}

// dropFloor is the absolute standard-error floor for the per-window
// drop fraction (drops per arrived packet): below one part in 2e4 the
// drop series is considered settled regardless of its relative spread.
const dropFloor = 5e-5

func converged(m *stats.Moments, relTol, absFloor float64) bool {
	if m.N() < 2 {
		return false
	}
	se := m.Stddev() / math.Sqrt(float64(m.N()))
	return se <= math.Max(relTol*math.Abs(m.Mean()), absFloor)
}

// warmupAdaptive advances the engine through the warmup phase, cutting
// it short once the per-window goodput rate and drop fraction reach
// steady state under the same convergence test the measurement phase
// uses. Warmup exists only to get past the transient; once the
// transient is demonstrably over, the remaining warmup carries no
// information. Returns whether the warmup was cut short.
func (t *Testbed) warmupAdaptive(warmup sim.Duration, rule StopRule) bool {
	if !t.started {
		t.Start()
		t.started = true
	}
	rule = rule.Fit(warmup)
	if t.cfg.BurstDuty > 0 {
		rule = rule.Align(t.cfg.BurstPeriod)
	}
	if rule.Window <= 0 || rule.RelTol <= 0 ||
		warmup <= rule.Window*sim.Duration(rule.MinWindows+1) {
		t.Engine.Run(t.Engine.Now().Add(warmup))
		return false
	}
	var goodRate, dropFrac stats.Moments
	var elapsed sim.Duration
	var prevGood, prevArrived, prevDrops uint64
	for elapsed < warmup {
		step := rule.Window
		if rem := warmup - elapsed; rem < step {
			step = rem
		}
		t.Engine.Run(t.Engine.Now().Add(step))
		elapsed += step

		good := t.Receiver.GoodputBytes()
		ns := t.NIC.Stats()
		arrived := ns.RxPackets + ns.Drops
		goodRate.Add(float64(good-prevGood) * 8 / step.Seconds() / 1e9)
		frac := 0.0
		if da := arrived - prevArrived; da > 0 {
			frac = float64(ns.Drops-prevDrops) / float64(da)
		}
		dropFrac.Add(frac)
		prevGood, prevArrived, prevDrops = good, arrived, ns.Drops

		if elapsed >= warmup {
			break
		}
		if int(goodRate.N()) >= rule.MinWindows &&
			converged(&goodRate, rule.RelTol, 0) &&
			converged(&dropFrac, rule.RelTol, dropFloor) {
			return true
		}
	}
	return false
}

// RunAdaptive is Run with steady-state early termination on both
// phases. The warmup is cut short as soon as the transient has
// demonstrably passed (see warmupAdaptive); the measurement window then
// executes in rule.Window sub-windows, feeding per-window goodput rate
// and drop fraction into Welford accumulators, and stops the engine as
// soon as both series converge (see StopRule). Counters in the returned
// Results are scaled from the elapsed window up to the requested
// measure so downstream consumers see the usual units; rates and
// quantiles are reported from the observed prefix unchanged. The
// boolean reports whether either phase terminated early.
//
// With a zero rule (or a window too coarse to fit MinWindows+1
// sub-windows) this is exactly Run: the engine advances through the
// same event sequence whether the horizon is reached in one call or
// several, so a non-triggering RunAdaptive is bit-identical to Run.
func (t *Testbed) RunAdaptive(warmup, measure sim.Duration, rule StopRule) (Results, bool) {
	mRule := rule
	if t.cfg.BurstDuty > 0 {
		mRule = mRule.Align(t.cfg.BurstPeriod)
	}
	if mRule.Window <= 0 || mRule.RelTol <= 0 ||
		measure <= mRule.Window*sim.Duration(mRule.MinWindows+1) {
		return t.Run(warmup, measure), false
	}
	warmCut := t.warmupAdaptive(warmup, rule)
	b := t.beginMeasure(0)
	rule = mRule

	var goodRate, dropFrac stats.Moments
	var elapsed sim.Duration
	var prevGood, prevArrived, prevDrops uint64
	stopped := false
	for elapsed < measure {
		step := rule.Window
		if rem := measure - elapsed; rem < step {
			step = rem
		}
		t.Engine.Run(t.Engine.Now().Add(step))
		elapsed += step

		good := t.Receiver.GoodputBytes()
		ns := t.NIC.Stats()
		arrived := ns.RxPackets + ns.Drops
		goodRate.Add(float64(good-prevGood) * 8 / step.Seconds() / 1e9)
		frac := 0.0
		if da := arrived - prevArrived; da > 0 {
			frac = float64(ns.Drops-prevDrops) / float64(da)
		}
		dropFrac.Add(frac)
		prevGood, prevArrived, prevDrops = good, arrived, ns.Drops

		if elapsed >= measure {
			break
		}
		if int(goodRate.N()) >= rule.MinWindows &&
			converged(&goodRate, rule.RelTol, 0) &&
			converged(&dropFrac, rule.RelTol, dropFloor) {
			stopped = true
			break
		}
	}

	res := t.harvest(b, elapsed)
	if stopped && elapsed < measure {
		res.scaleTo(measure, elapsed)
	}
	return res, stopped || warmCut
}

// scaleTo extrapolates the window's integer counters from the observed
// elapsed duration up to the requested one (rates and quantiles are
// already duration-normalized and stay as observed).
func (r *Results) scaleTo(measure, elapsed sim.Duration) {
	f := float64(measure) / float64(elapsed)
	scale := func(v uint64) uint64 { return uint64(math.Round(float64(v) * f)) }
	r.Goodput = scale(r.Goodput)
	r.RxPackets = scale(r.RxPackets)
	r.Drops = scale(r.Drops)
	r.Retransmits = scale(r.Retransmits)
	r.SwitchDrops = scale(r.SwitchDrops)
	r.Reads = scale(r.Reads)
	r.DMAFaults = scale(r.DMAFaults)
	r.Duration = measure
}
