package host

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hic/internal/iommu"
	"hic/internal/pcie"
	"hic/internal/pkt"
	"hic/internal/sim"
	"hic/internal/wire"
)

// These integration tests assert end-to-end invariants of the assembled
// testbed — conservation laws and paper-shape properties that no single
// module can check alone.

func TestPacketConservation(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Engine.Run(tb.Engine.Now().Add(10 * sim.Millisecond))

	sent := tb.Registry.Counter("transport.sent.packets").Value()
	ns := tb.NIC.Stats()
	arrived := ns.RxPackets + ns.Drops
	inFabric := sent - arrived
	// Everything sent either reached the NIC, dropped there, or is still
	// in flight inside the fabric (bounded by the BDP + switch buffer).
	if arrived > sent {
		t.Fatalf("NIC saw %d packets but only %d were sent", arrived, sent)
	}
	if inFabric > 3000 {
		t.Errorf("%d packets unaccounted for (sent=%d arrived=%d)", inFabric, sent, arrived)
	}
	// Everything the NIC delivered was processed or is queued at cores.
	delivered := ns.RxPackets
	processed := tb.CPU.Processed()
	queued := uint64(tb.CPU.QueuedPackets())
	inDMA := delivered - processed - queued
	if processed+queued > delivered {
		t.Fatalf("CPU handled %d+%d packets but NIC admitted %d", processed, queued, delivered)
	}
	if inDMA > 64 {
		t.Errorf("%d packets stuck between NIC admission and CPU", inDMA)
	}
}

func TestCreditConservationEndToEnd(t *testing.T) {
	cfg := swiftConfig(8)
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.Engine.Run(tb.Engine.Now().Add(10 * sim.Millisecond))
	// Stop the senders and drain.
	for _, c := range tb.Conns {
		c.SetActive(false)
	}
	tb.Engine.Run(tb.Engine.Now().Add(5 * sim.Millisecond))
	if got, want := tb.Link.CreditsAvailable(), pcie.DefaultConfig().CreditBytes; got != want {
		t.Errorf("credits after drain = %d, want full pool %d", got, want)
	}
	if tb.NIC.BufferUsed() != 0 {
		t.Errorf("NIC buffer not drained: %d bytes", tb.NIC.BufferUsed())
	}
	if tb.CPU.QueuedPackets() != 0 {
		t.Errorf("CPU queues not drained: %d packets", tb.CPU.QueuedPackets())
	}
}

func TestGoodputNeverExceedsArrivals(t *testing.T) {
	cfg := swiftConfig(12)
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run(5*sim.Millisecond, 10*sim.Millisecond)
	// Packets DMA-complete before the measurement boundary may reach the
	// application just after it; allow that in-flight skew.
	slack := uint64(256 * cfg.Transport.MTU)
	if res.Goodput > tb.NIC.Stats().RxPayloadBytes+slack {
		t.Errorf("goodput %d exceeds NIC payload %d", res.Goodput, tb.NIC.Stats().RxPayloadBytes)
	}
	// Each flow may complete one read whose earlier packets landed
	// before the measurement boundary, so allow one read of slack per
	// connection.
	flows := uint64(cfg.Senders * cfg.ReceiverThreads)
	if res.Reads > res.Goodput/uint64(cfg.Transport.ReadSize)+flows {
		t.Errorf("reads %d exceed goodput/16KB + flows", res.Reads)
	}
}

func TestHostDelayRespectsSwiftTargetWhenVisible(t *testing.T) {
	// Below the blind threshold (heavy antagonism pushes service down),
	// Swift must keep the p50 host delay near its 100µs target.
	cfg := swiftConfig(12)
	cfg.AntagonistCores = 12
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run(15*sim.Millisecond, 15*sim.Millisecond)
	if res.AppThroughputGbps > 75 {
		t.Skip("antagonism did not push the host below the blind threshold")
	}
	if res.HostDelayP50 > 130*sim.Microsecond {
		t.Errorf("p50 host delay %v far above the 100µs target", res.HostDelayP50)
	}
	if res.DropRatePct > 1 {
		t.Errorf("drop rate %v%% with CC active, want ≈0", res.DropRatePct)
	}
}

func TestBlindZoneDropsDespiteSwift(t *testing.T) {
	// The §3.1 centerpiece: at 10–12 threads the IOMMU bottleneck sits
	// above 81 Gbps, the NIC buffer drains under the 100µs target, and
	// Swift never sees the congestion — steady-state drops follow.
	cfg := swiftConfig(10)
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tb.Run(15*sim.Millisecond, 15*sim.Millisecond)
	if res.AppThroughputGbps < 81 {
		t.Skipf("operating point below the blind threshold (%.1f)", res.AppThroughputGbps)
	}
	if res.Drops == 0 {
		t.Error("no drops in the congestion-control blind zone")
	}
}

func TestMissesPerPacketKneeAtEightThreads(t *testing.T) {
	// The IOTLB working set (16 entries/thread) crosses 128 entries just
	// above 8 threads: misses per packet must be ≈0 at 8 and clearly
	// positive at 12.
	run := func(threads int) float64 {
		cfg := swiftConfig(threads)
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Run(8*sim.Millisecond, 10*sim.Millisecond).IOTLBMissesPerPacket
	}
	at8 := run(8)
	at12 := run(12)
	if at8 > 0.1 {
		t.Errorf("misses/packet at 8 threads = %v, want ≈0 (below the knee)", at8)
	}
	if at12 < 0.5 {
		t.Errorf("misses/packet at 12 threads = %v, want ≫0 (above the knee)", at12)
	}
}

func TestFourKPagesWorseThanHugepages(t *testing.T) {
	run := func(huge bool) Results {
		cfg := swiftConfig(12)
		cfg.Hugepages = huge
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Run(8*sim.Millisecond, 10*sim.Millisecond)
	}
	hp := run(true)
	small := run(false)
	if small.AppThroughputGbps >= hp.AppThroughputGbps {
		t.Errorf("4K pages (%.1f) not slower than hugepages (%.1f)",
			small.AppThroughputGbps, hp.AppThroughputGbps)
	}
	if small.IOTLBMissesPerPacket <= hp.IOTLBMissesPerPacket {
		t.Errorf("4K misses (%v) not above hugepage misses (%v)",
			small.IOTLBMissesPerPacket, hp.IOTLBMissesPerPacket)
	}
}

func TestEnableTraceRecordsSeries(t *testing.T) {
	cfg := swiftConfig(4)
	cfg.Senders = 8
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := tb.EnableTrace(100 * sim.Microsecond)
	tb.Run(2*sim.Millisecond, 3*sim.Millisecond)
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	names := rec.Names()
	want := map[string]bool{"goodput_gbps": true, "nic_buffer_kb": true, "cwnd_sum_pkts": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("trace series = %v, missing expected probes", names)
	}
	// Goodput must be positive once warmed up.
	s := rec.Series("goodput_gbps")
	if s[len(s)-1].Value <= 0 {
		t.Error("traced goodput never positive")
	}
}

func TestNoFabricDropsInHostExperiments(t *testing.T) {
	// The paper's congestion is entirely at the host; the fabric is
	// provisioned so the switch never drops in any standard scenario.
	for _, threads := range []int{4, 12, 16} {
		cfg := swiftConfig(threads)
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := tb.Run(5*sim.Millisecond, 8*sim.Millisecond)
		if res.SwitchDrops != 0 {
			t.Errorf("threads=%d: %d switch drops (fabric must not bottleneck)",
				threads, res.SwitchDrops)
		}
	}
}

func TestStrictModeEndToEnd(t *testing.T) {
	loose := swiftConfig(8)
	strict := swiftConfig(8)
	strict.IOMMU.Mode = iommu.StrictMode
	tbL, err := New(loose)
	if err != nil {
		t.Fatal(err)
	}
	tbS, err := New(strict)
	if err != nil {
		t.Fatal(err)
	}
	rl := tbL.Run(8*sim.Millisecond, 10*sim.Millisecond)
	rs := tbS.Run(8*sim.Millisecond, 10*sim.Millisecond)
	if rs.AppThroughputGbps > rl.AppThroughputGbps {
		t.Errorf("strict mode (%.1f) beat loose mode (%.1f)",
			rs.AppThroughputGbps, rl.AppThroughputGbps)
	}
	if tbS.Registry.Counter("iommu.strict.maps").Value() == 0 {
		t.Error("strict mode performed no per-DMA maps")
	}
}

func TestEnableCaptureRecordsArrivals(t *testing.T) {
	cfg := swiftConfig(2)
	cfg.Senders = 4
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw := tb.EnableCapture(&buf)
	tb.Run(sim.Millisecond, 2*sim.Millisecond)
	if cw.Count() == 0 {
		t.Fatal("capture recorded nothing")
	}
	// Every record decodes and is a data packet for a valid queue.
	r := wire.NewReader(&buf)
	n := 0
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if p.Kind != pkt.Data || p.Queue < 0 || p.Queue >= cfg.ReceiverThreads {
			t.Fatalf("bad captured packet: %+v", p)
		}
		n++
	}
	if n != cw.Count() {
		t.Errorf("decoded %d records, writer reports %d", n, cw.Count())
	}
}
