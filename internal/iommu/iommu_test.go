package iommu

import (
	"testing"
	"testing/quick"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/sim"
)

func newIOMMU(t testing.TB, cfg Config) (*sim.Engine, *IOMMU) {
	t.Helper()
	e := sim.NewEngine(1)
	mc, err := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(e, mc, metrics.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, u
}

// translate runs a Translate call to completion and returns the result.
func translate(e *sim.Engine, u *IOMMU, iova uint64, size int) TranslationResult {
	var res TranslationResult
	gotIt := false
	u.Translate(iova, size, func(r TranslationResult) { res = r; gotIt = true })
	e.Run(e.Now().Add(10 * sim.Millisecond))
	if !gotIt {
		panic("translation never completed")
	}
	return res
}

func TestPageSize(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2<<20 {
		t.Error("page byte sizes wrong")
	}
	if Page4K.WalkLevels() != 4 || Page2M.WalkLevels() != 3 {
		t.Error("walk levels wrong")
	}
	if Page4K.String() != "4K" || Page2M.String() != "2M" {
		t.Error("String() wrong")
	}
}

func TestDisabledIOMMUTranslatesInstantly(t *testing.T) {
	e, u := newIOMMU(t, Config{Enabled: false})
	if u.Enabled() {
		t.Fatal("Enabled() true for disabled config")
	}
	start := e.Now()
	var res TranslationResult
	u.Translate(0xdead000, 4096, func(r TranslationResult) { res = r })
	if e.Now() != start {
		t.Error("disabled translation consumed simulated time")
	}
	if res.Misses != 0 || res.Fault != nil {
		t.Errorf("disabled translation result = %+v", res)
	}
}

func TestUnmappedAddressFaults(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	res := translate(e, u, 0x100000, 4096)
	if res.Fault == nil {
		t.Error("unmapped DMA did not fault")
	}
	if u.Stats().Faults != 1 {
		t.Errorf("fault counter = %d", u.Stats().Faults)
	}
}

func TestMapRegionValidation(t *testing.T) {
	_, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 0, Page4K); err == nil {
		t.Error("empty region accepted")
	}
	if err := u.MapRegion(123, 4096, Page4K); err == nil {
		t.Error("unaligned base accepted")
	}
	if err := u.MapRegion(1<<21, 1<<21, Page2M); err != nil {
		t.Errorf("valid 2M region rejected: %v", err)
	}
	if err := u.MapRegion(1<<21, 4096, Page4K); err == nil {
		t.Error("overlapping region accepted")
	}
	if u.MappedPages() != 1 {
		t.Errorf("MappedPages = %d, want 1", u.MappedPages())
	}
}

func TestColdMissThenHit(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 1<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	r1 := translate(e, u, 0x1000, 64)
	if r1.Misses != 1 {
		t.Errorf("cold access misses = %d, want 1", r1.Misses)
	}
	if r1.WalkAccesses < 1 || r1.WalkAccesses > 4 {
		t.Errorf("cold walk accesses = %d, want 1..4", r1.WalkAccesses)
	}
	r2 := translate(e, u, 0x1040, 64) // same page
	if r2.Misses != 0 {
		t.Errorf("warm access misses = %d, want 0", r2.Misses)
	}
	st := u.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Translations != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDMASpanningPages(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 1<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	// 4KB DMA starting mid-page touches two 4K pages.
	res := translate(e, u, 0x800, 4096)
	if res.Pages != 2 {
		t.Errorf("Pages = %d, want 2", res.Pages)
	}
	if res.Misses != 2 {
		t.Errorf("Misses = %d, want 2 (both cold)", res.Misses)
	}
	// Same DMA within one 2M hugepage touches one page.
	if err := u.MapRegion(1<<21, 1<<21, Page2M); err != nil {
		t.Fatal(err)
	}
	res = translate(e, u, (1<<21)+0x800, 4096)
	if res.Pages != 1 {
		t.Errorf("hugepage Pages = %d, want 1", res.Pages)
	}
}

func TestHugepageWalkShorterThan4K(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PWCEntriesPerLevel = 0 // disable PWC to expose raw walk lengths
	e, u := newIOMMU(t, cfg)
	if err := u.MapRegion(0, 1<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	if err := u.MapRegion(1<<30, 1<<21, Page2M); err != nil {
		t.Fatal(err)
	}
	r4k := translate(e, u, 0, 64)
	r2m := translate(e, u, 1<<30, 64)
	if r4k.WalkAccesses != 4 {
		t.Errorf("4K walk = %d reads, want 4", r4k.WalkAccesses)
	}
	if r2m.WalkAccesses != 3 {
		t.Errorf("2M walk = %d reads, want 3", r2m.WalkAccesses)
	}
}

func TestPWCReducesWalkReads(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 64<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	// First walk in a 2MB neighbourhood: full cost. Second walk to a
	// different 4K page nearby: upper levels cached, leaf read only.
	r1 := translate(e, u, 0, 64)
	r2 := translate(e, u, 0x5000, 64)
	if r2.WalkAccesses >= r1.WalkAccesses {
		t.Errorf("PWC did not reduce walk reads: first=%d second=%d",
			r1.WalkAccesses, r2.WalkAccesses)
	}
	if r2.WalkAccesses != 1 {
		t.Errorf("neighbour walk reads = %d, want 1 (leaf only)", r2.WalkAccesses)
	}
}

func TestIOTLBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig() // 128 entries
	e, u := newIOMMU(t, cfg)
	if err := u.MapRegion(0, 4<<20, Page4K); err != nil { // 1024 pages
		t.Fatal(err)
	}
	// Touch 512 distinct pages: far beyond capacity.
	for i := 0; i < 512; i++ {
		translate(e, u, uint64(i)*4096, 64)
	}
	st := u.Stats()
	if st.Misses != 512 {
		t.Errorf("cold scan misses = %d, want 512", st.Misses)
	}
	// Re-scan: with a 128-entry cache and a 512-page cyclic scan, LRU
	// guarantees misses again.
	for i := 0; i < 512; i++ {
		translate(e, u, uint64(i)*4096, 64)
	}
	st = u.Stats()
	if st.Misses != 1024 {
		t.Errorf("re-scan misses = %d, want 1024 (LRU thrash)", st.Misses)
	}
}

func TestWorkingSetWithinTLBHasNoSteadyMisses(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 64*4096, Page4K); err != nil { // 64 pages < 128 entries
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			translate(e, u, uint64(i)*4096, 64)
		}
	}
	st := u.Stats()
	// All misses must be cold (some conflict misses are tolerable with
	// 8-way sets; allow a small margin).
	if st.Misses > 80 {
		t.Errorf("steady-state misses = %d for a 64-page working set (want ≈64 cold)", st.Misses)
	}
}

func TestDeviceTLBBypassesIOTLB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeviceTLBEntries = 1024
	e, u := newIOMMU(t, cfg)
	if err := u.MapRegion(0, 4<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	// Scan 512 pages twice. With a 1024-entry device TLB, the second
	// scan hits on-device and the IOTLB sees no new traffic.
	for i := 0; i < 512; i++ {
		translate(e, u, uint64(i)*4096, 64)
	}
	missesAfterCold := u.Stats().Misses
	for i := 0; i < 512; i++ {
		translate(e, u, uint64(i)*4096, 64)
	}
	st := u.Stats()
	// The 8-way device TLB hashes 512 keys into 128 sets; a few sets
	// overflow their ways, so allow bounded conflict misses while the
	// bulk of the rescan must hit on-device.
	grown := st.Misses - missesAfterCold
	if grown > 512/2 {
		t.Errorf("misses grew by %d on rescan despite device TLB", grown)
	}
	if st.DeviceHits < 256 {
		t.Errorf("device hits = %d, want the majority of 512", st.DeviceHits)
	}
}

func TestUnmapInvalidatesTranslations(t *testing.T) {
	e, u := newIOMMU(t, DefaultConfig())
	if err := u.MapRegion(0, 1<<20, Page4K); err != nil {
		t.Fatal(err)
	}
	translate(e, u, 0, 64)
	if err := u.UnmapRegion(0); err != nil {
		t.Fatal(err)
	}
	if u.MappedPages() != 0 {
		t.Errorf("MappedPages after unmap = %d", u.MappedPages())
	}
	res := translate(e, u, 0, 64)
	if res.Fault == nil {
		t.Error("access to unmapped region did not fault")
	}
	if err := u.UnmapRegion(0x999000); err == nil {
		t.Error("unmapping unknown region did not error")
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	mc, _ := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	bad := []Config{
		{Enabled: true, TLBEntries: 0, TLBWays: 1, WalkEntryBytes: 64},
		{Enabled: true, TLBEntries: 128, TLBWays: 0, WalkEntryBytes: 64},
		{Enabled: true, TLBEntries: 128, TLBWays: 7, WalkEntryBytes: 64}, // 7 ∤ 128
		{Enabled: true, TLBEntries: 128, TLBWays: 8, WalkEntryBytes: 0},
		{Enabled: true, TLBEntries: 128, TLBWays: 8, WalkEntryBytes: 64, PWCEntriesPerLevel: -1},
	}
	for i, cfg := range bad {
		if _, err := New(e, mc, metrics.NewRegistry(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Disabled config needs no cache parameters.
	if _, err := New(e, mc, metrics.NewRegistry(), Config{Enabled: false}); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
}

func TestWalkLatencyFeelsMemoryLoad(t *testing.T) {
	e := sim.NewEngine(1)
	mc, err := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PWCEntriesPerLevel = 0
	u, err := New(e, mc, metrics.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.MapRegion(0, 64<<20, Page4K); err != nil {
		t.Fatal(err)
	}

	timeWalk := func(iova uint64) sim.Duration {
		start := e.Now()
		var end sim.Time
		u.Translate(iova, 64, func(TranslationResult) { end = e.Now() })
		e.Run(e.Now().Add(10 * sim.Millisecond))
		return end.Sub(start)
	}
	idle := timeWalk(0)
	mc.SetCPUDemand("antagonist", 150e9)
	e.Run(e.Now().Add(100 * sim.Microsecond))
	loaded := timeWalk(8 << 20)
	// The walk's fixed per-step cost dominates; the memory component
	// still has to inflate visibly.
	if loaded < idle+sim.Duration(3*float64(mem.DefaultConfig().BaseLatency)*3) {
		t.Errorf("loaded walk %v not ≫ idle walk %v", loaded, idle)
	}
}

// Property: LRU TLB lookup-after-insert always hits, and occupancy never
// exceeds capacity.
func TestTLBProperties(t *testing.T) {
	f := func(keys []uint16) bool {
		c := newTLB(128, 8)
		for _, k := range keys {
			key := tlbKey(k)
			c.insert(key)
			if !c.lookup(key) {
				return false
			}
		}
		total := 0
		for _, s := range c.sets {
			if len(s) > c.ways {
				return false
			}
			total += len(s)
		}
		return total <= 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with any sequence of accesses to a mapped region, miss count
// never exceeds translation count and stats stay consistent.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e, u := newIOMMU(t, DefaultConfig())
		if err := u.MapRegion(0, 1<<28, Page4K); err != nil {
			return false
		}
		for _, off := range offsets {
			translate(e, u, uint64(off)*4096, 64)
		}
		st := u.Stats()
		return st.Translations == uint64(len(offsets)) &&
			st.Hits+st.Misses == st.Translations &&
			st.WalkReads >= st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTranslateHit(b *testing.B) {
	e, u := newIOMMU(b, DefaultConfig())
	if err := u.MapRegion(0, 1<<20, Page4K); err != nil {
		b.Fatal(err)
	}
	translate(e, u, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Translate(0, 64, func(TranslationResult) {})
		if i%1024 == 0 {
			e.Run(e.Now().Add(sim.Millisecond))
		}
	}
	// Bounded horizon: the memory controller's epoch ticker never
	// stops, so Drain() would loop forever.
	e.Run(e.Now().Add(100 * sim.Millisecond))
}

func TestStrictModeColdMissesEveryDMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = StrictMode
	e, u := newIOMMU(t, cfg)
	// Strict mode needs no pre-registered regions: each DMA maps its own
	// transient window.
	r1 := translate(e, u, 0xabc000, 4096)
	r2 := translate(e, u, 0xabc000, 4096) // same address: still cold
	if r1.Fault != nil || r2.Fault != nil {
		t.Fatalf("strict-mode faults: %v %v", r1.Fault, r2.Fault)
	}
	if r1.Misses == 0 || r2.Misses != r1.Misses {
		t.Errorf("strict mode should cold-miss every DMA: %d then %d", r1.Misses, r2.Misses)
	}
	if u.Stats().Misses != uint64(r1.Misses+r2.Misses) {
		t.Errorf("stats misses = %d", u.Stats().Misses)
	}
}

func TestStrictModePaysMapLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = StrictMode
	e, u := newIOMMU(t, cfg)
	start := e.Now()
	var end sim.Time
	u.Translate(0x1000, 64, func(TranslationResult) { end = e.Now() })
	e.Run(e.Now().Add(sim.Millisecond))
	if end.Sub(start) < cfg.StrictMapLatency {
		t.Errorf("strict DMA took %v, want ≥ map latency %v", end.Sub(start), cfg.StrictMapLatency)
	}
}

func TestStrictModeValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = StrictMode
	cfg.StrictMapLatency = 0
	e := sim.NewEngine(1)
	mc, _ := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	if _, err := New(e, mc, metrics.NewRegistry(), cfg); err == nil {
		t.Error("strict mode with zero map latency accepted")
	}
	if LooseMode.String() != "loose" || StrictMode.String() != "strict" {
		t.Error("MapMode.String wrong")
	}
}

func TestStrictModeSpanningPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = StrictMode
	e, u := newIOMMU(t, cfg)
	// 4KB DMA at a half-page offset: two 4K windows, two cold misses.
	r := translate(e, u, 0x800, 4096)
	if r.Pages != 2 || r.Misses != 2 {
		t.Errorf("strict spanning DMA: pages=%d misses=%d, want 2/2", r.Pages, r.Misses)
	}
}
