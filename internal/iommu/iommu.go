// Package iommu models the input/output memory management unit on the
// NIC-to-CPU data path (§3.1 of the paper): a 4-level radix page table that
// lives in host memory, an IOTLB that caches completed translations, and a
// page-walk cache for upper-level entries. Every DMA the NIC issues must
// translate its IO-virtual address here (when protection is enabled);
// IOTLB misses turn into one or more reads through the memory controller,
// inflating per-DMA latency exactly as the paper describes.
//
// The package also implements the §4(a) extension: an ATS-style device TLB
// (translations cached on the NIC itself) that can be sized independently
// of the host IOTLB.
package iommu

import (
	"fmt"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/sim"
)

// PageSize selects the mapping granularity for a registered region.
type PageSize int

const (
	// Page4K is a standard 4 KiB page (12-bit offset, 4-level walk).
	Page4K PageSize = iota
	// Page2M is a 2 MiB hugepage (21-bit offset, 3-level walk).
	Page2M
)

// Shift returns the page-offset bit width.
func (p PageSize) Shift() uint {
	if p == Page2M {
		return 21
	}
	return 12
}

// Bytes returns the page size in bytes.
func (p PageSize) Bytes() uint64 { return 1 << p.Shift() }

// WalkLevels returns how many page-table levels a full walk traverses.
func (p PageSize) WalkLevels() int {
	if p == Page2M {
		return 3
	}
	return 4
}

func (p PageSize) String() string {
	if p == Page2M {
		return "2M"
	}
	return "4K"
}

// MapMode selects how the stack manages IOMMU mappings.
type MapMode int

const (
	// LooseMode registers fixed regions upfront and keeps them mapped
	// for the lifetime of the run — the paper's setup ("no software
	// IOTLB invalidations at run time").
	LooseMode MapMode = iota
	// StrictMode maps each DMA buffer immediately before the transfer
	// and unmaps (with an IOTLB invalidation) right after — the dynamic
	// mode the paper notes is "known to cause even worse IOTLB misses".
	// Every DMA pays a mapping update plus an invalidation round, and
	// its translation always cold-misses.
	StrictMode
)

func (m MapMode) String() string {
	if m == StrictMode {
		return "strict"
	}
	return "loose"
}

// Config configures the IOMMU. The defaults mirror the paper's testbed:
// a 128-entry IOTLB.
type Config struct {
	// Enabled turns address translation on. When false, Translate
	// completes immediately with zero misses (the "IOMMU OFF" datapath).
	Enabled bool
	// Mode selects loose (default, the paper's setup) or strict per-DMA
	// mapping management.
	Mode MapMode
	// StrictMapLatency is the software+hardware cost of one map/unmap
	// pair in strict mode (page-table update plus a queued IOTLB
	// invalidation); measurements put this in the microsecond range.
	StrictMapLatency sim.Duration
	// TLBEntries is the IOTLB capacity (paper: 128).
	TLBEntries int
	// TLBWays is the set associativity of the IOTLB.
	TLBWays int
	// TLBHitLatency is the cost of an IOTLB hit (a few ns).
	TLBHitLatency sim.Duration
	// PWCEntriesPerLevel sizes the page-walk caches for the upper levels;
	// a PWC hit skips that level's memory access.
	PWCEntriesPerLevel int
	// DeviceTLBEntries, when > 0, enables an ATS-style translation cache
	// on the device; hits there bypass the IOMMU entirely (§4(a)).
	DeviceTLBEntries int
	// WalkEntryBytes is the size of each page-table read (one cache line).
	WalkEntryBytes int
	// WalkStepLatency is the walker's fixed cost per page-table read on
	// top of the memory access itself (walker occupancy, root-complex
	// round trips). Measured IOTLB miss penalties run from a few hundred
	// ns up to a microsecond (§3.1).
	WalkStepLatency sim.Duration
}

// DefaultConfig returns the paper-testbed IOMMU configuration (enabled).
func DefaultConfig() Config {
	return Config{
		Enabled:            true,
		Mode:               LooseMode,
		StrictMapLatency:   900 * sim.Nanosecond,
		TLBEntries:         128,
		TLBWays:            128, // fully associative, as in real IOTLBs
		TLBHitLatency:      2 * sim.Nanosecond,
		PWCEntriesPerLevel: 32,
		WalkEntryBytes:     64,
		WalkStepLatency:    400 * sim.Nanosecond,
	}
}

func (c Config) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.TLBEntries <= 0 {
		return fmt.Errorf("iommu: TLBEntries must be positive")
	}
	if c.TLBWays <= 0 || c.TLBEntries%c.TLBWays != 0 {
		return fmt.Errorf("iommu: TLBWays %d must divide TLBEntries %d", c.TLBWays, c.TLBEntries)
	}
	if c.PWCEntriesPerLevel < 0 || c.DeviceTLBEntries < 0 {
		return fmt.Errorf("iommu: negative cache size")
	}
	if c.WalkEntryBytes <= 0 {
		return fmt.Errorf("iommu: WalkEntryBytes must be positive")
	}
	if c.WalkStepLatency < 0 {
		return fmt.Errorf("iommu: negative WalkStepLatency")
	}
	if c.Mode == StrictMode && c.StrictMapLatency <= 0 {
		return fmt.Errorf("iommu: strict mode requires positive StrictMapLatency")
	}
	return nil
}

// tlbKey identifies a translation: virtual page number tagged with the
// page size so 4K and 2M entries never alias.
type tlbKey uint64

func makeKey(iova uint64, ps PageSize) tlbKey {
	return tlbKey(iova>>ps.Shift())<<1 | tlbKey(ps&1)
}

// tlb is a set-associative cache with per-set LRU replacement.
type tlb struct {
	ways  int
	sets  [][]tlbKey // each set is LRU-ordered, most recent first
	nsets int
}

func newTLB(entries, ways int) *tlb {
	nsets := entries / ways
	if nsets < 1 {
		nsets = 1
		ways = entries
	}
	sets := make([][]tlbKey, nsets)
	for i := range sets {
		sets[i] = make([]tlbKey, 0, ways)
	}
	return &tlb{ways: ways, sets: sets, nsets: nsets}
}

// setIndex hashes the key before reducing modulo the set count: region
// bases sit at large power-of-two strides, and an unhashed modulo would
// alias every thread's pages into a handful of sets.
func (t *tlb) setIndex(k tlbKey) uint64 {
	// Fibonacci hashing: the multiply pushes entropy toward the high
	// bits, so the index must come from the top of the word.
	h := uint64(k) * 0x9e3779b97f4a7c15
	return (h >> 40) % uint64(t.nsets)
}

// lookup probes the cache and refreshes LRU order on hit.
func (t *tlb) lookup(k tlbKey) bool {
	idx := t.setIndex(k)
	s := t.sets[idx]
	for i, e := range s {
		if e == k {
			// Move to front.
			copy(s[1:i+1], s[:i])
			s[0] = k
			return true
		}
	}
	return false
}

// insert installs k, evicting the least recently used way if needed.
func (t *tlb) insert(k tlbKey) {
	idx := t.setIndex(k)
	s := t.sets[idx]
	for _, e := range s {
		if e == k {
			return // already present (lookup+insert race in chained walks)
		}
	}
	if len(s) < t.ways {
		s = append(s, 0)
	}
	copy(s[1:], s)
	s[0] = k
	t.sets[idx] = s
}

// invalidate removes k if present.
func (t *tlb) invalidate(k tlbKey) {
	idx := t.setIndex(k)
	s := t.sets[idx]
	for i, e := range s {
		if e == k {
			t.sets[idx] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// flush empties the cache.
func (t *tlb) flush() {
	for i := range t.sets {
		t.sets[i] = t.sets[i][:0]
	}
}

// lruCache is a tiny fully-associative LRU used for the page-walk caches.
type lruCache struct {
	capacity int
	order    []uint64
}

func newLRU(capacity int) *lruCache { return &lruCache{capacity: capacity} }

func (l *lruCache) lookup(k uint64) bool {
	if l.capacity == 0 {
		return false
	}
	for i, e := range l.order {
		if e == k {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = k
			return true
		}
	}
	return false
}

func (l *lruCache) insert(k uint64) {
	if l.capacity == 0 {
		return
	}
	for _, e := range l.order {
		if e == k {
			return
		}
	}
	if len(l.order) < l.capacity {
		l.order = append(l.order, 0)
	}
	copy(l.order[1:], l.order)
	l.order[0] = k
}

// mapping records one registered IOVA region.
type mapping struct {
	base, size uint64
	ps         PageSize
}

// TranslationResult reports what one Translate call cost.
type TranslationResult struct {
	// Pages is how many distinct pages the DMA touched.
	Pages int
	// Misses is the number of IOTLB misses incurred.
	Misses int
	// WalkAccesses is the number of page-table memory reads performed.
	WalkAccesses int
	// Fault is non-nil if any touched address was not mapped.
	Fault error
}

// IOMMU is the translation unit. It is driven by the single-threaded
// simulation engine; methods must not be called from other goroutines.
type IOMMU struct {
	engine *sim.Engine
	memory *mem.Controller
	cfg    Config

	iotlb  *tlb
	devTLB *tlb
	// pwc[i] caches the page-table level that a full 4-level walk visits
	// i-th (0 = root level). A hit skips that level's memory read.
	pwc []*lruCache

	mappings []mapping

	// missEWMA tracks recent misses per translation (per-event EWMA, so
	// it stays deterministic and tick-free). Drop attribution reads it to
	// decide whether the IOTLB was thrashing when a packet was dropped.
	missEWMA float64

	translations *metrics.Counter
	strictMaps   *metrics.Counter
	hits         *metrics.Counter
	misses       *metrics.Counter
	devHits      *metrics.Counter
	walkReads    *metrics.Counter
	faults       *metrics.Counter
	mappedPages  *metrics.Gauge
}

// New constructs an IOMMU attached to the given memory controller.
func New(engine *sim.Engine, memory *mem.Controller, reg *metrics.Registry, cfg Config) (*IOMMU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	u := &IOMMU{
		engine:       engine,
		memory:       memory,
		cfg:          cfg,
		translations: reg.Counter("iommu.translations"),
		strictMaps:   reg.Counter("iommu.strict.maps"),
		hits:         reg.Counter("iommu.iotlb.hits"),
		misses:       reg.Counter("iommu.iotlb.misses"),
		devHits:      reg.Counter("iommu.devtlb.hits"),
		walkReads:    reg.Counter("iommu.walk.reads"),
		faults:       reg.Counter("iommu.faults"),
		mappedPages:  reg.Gauge("iommu.mapped.pages"),
	}
	if cfg.Enabled {
		u.iotlb = newTLB(cfg.TLBEntries, cfg.TLBWays)
		if cfg.DeviceTLBEntries > 0 {
			ways := 8
			if cfg.DeviceTLBEntries < ways {
				ways = cfg.DeviceTLBEntries
			}
			for cfg.DeviceTLBEntries%ways != 0 {
				ways--
			}
			u.devTLB = newTLB(cfg.DeviceTLBEntries, ways)
		}
		u.pwc = make([]*lruCache, 3) // levels above the leaf
		for i := range u.pwc {
			u.pwc[i] = newLRU(cfg.PWCEntriesPerLevel)
		}
	}
	return u, nil
}

// Enabled reports whether translation is active.
func (u *IOMMU) Enabled() bool { return u.cfg.Enabled }

// ResidentKeys returns the IOTLB's resident translation keys in
// deterministic order: sets ascending, within each set least-recently
// used first, so that PrimeKeys replaying the slice reproduces the
// donor's exact LRU stack. It is the IOMMU half of a steady-state
// checkpoint — the working set a converged run has pulled into the
// IOTLB, which a cold start re-faults over the whole ramp. Returns nil
// when translation is disabled.
func (u *IOMMU) ResidentKeys() []uint64 {
	if u.iotlb == nil {
		return nil
	}
	var keys []uint64
	for _, s := range u.iotlb.sets {
		for i := len(s) - 1; i >= 0; i-- {
			keys = append(keys, uint64(s[i]))
		}
	}
	return keys
}

// PrimeKeys seeds the IOTLB with a donor run's resident keys before the
// warm-started run begins. Inserts bypass the hit/miss counters and pay
// no walk latency — the donor run already paid for these translations.
// Keys whose set has filled simply evict LRU entries like any insert,
// so a donor captured under a different TLB geometry still primes
// safely. No-op when translation is disabled.
func (u *IOMMU) PrimeKeys(keys []uint64) {
	if u.iotlb == nil {
		return
	}
	for _, k := range keys {
		u.iotlb.insert(tlbKey(k))
	}
}

// missEWMAAlpha weights the recent-miss estimator: ~128 translations of
// memory, i.e. a few tens of packets at ~5 translations each — long
// enough to smooth per-packet noise, short enough to track the onset of
// thrashing within tens of microseconds at line rate.
const missEWMAAlpha = 1.0 / 128

// observeMiss folds one translated page into the recent-miss estimator.
func (u *IOMMU) observeMiss(missed bool) {
	v := 0.0
	if missed {
		v = 1
	}
	u.missEWMA += missEWMAAlpha * (v - u.missEWMA)
}

// RecentMissRate returns the recent misses-per-translation estimate in
// [0,1]. It is 0 while the IOMMU is disabled or idle.
func (u *IOMMU) RecentMissRate() float64 { return u.missEWMA }

// MapRegion registers [base, base+size) with the given page granularity,
// in the style of the loose-mode upfront registration the paper's stack
// uses. base must be aligned to the page size. Overlapping regions are
// rejected.
func (u *IOMMU) MapRegion(base, size uint64, ps PageSize) error {
	if size == 0 {
		return fmt.Errorf("iommu: empty region")
	}
	if base%ps.Bytes() != 0 {
		return fmt.Errorf("iommu: base %#x not aligned to %s page", base, ps)
	}
	end := base + size
	for _, m := range u.mappings {
		if base < m.base+m.size && m.base < end {
			return fmt.Errorf("iommu: region [%#x,%#x) overlaps existing [%#x,%#x)",
				base, end, m.base, m.base+m.size)
		}
	}
	u.mappings = append(u.mappings, mapping{base: base, size: size, ps: ps})
	u.mappedPages.Add(int64((size + ps.Bytes() - 1) / ps.Bytes()))
	return nil
}

// UnmapRegion removes a previously mapped region and flushes the caches
// (dynamic unmapping requires IOTLB invalidation, which is why production
// stacks avoid it; provided for completeness and tests).
func (u *IOMMU) UnmapRegion(base uint64) error {
	for i, m := range u.mappings {
		if m.base == base {
			u.mappings = append(u.mappings[:i], u.mappings[i+1:]...)
			u.mappedPages.Add(-int64((m.size + m.ps.Bytes() - 1) / m.ps.Bytes()))
			if u.iotlb != nil {
				for off := uint64(0); off < m.size; off += m.ps.Bytes() {
					u.iotlb.invalidate(makeKey(m.base+off, m.ps))
				}
			}
			if u.devTLB != nil {
				u.devTLB.flush()
			}
			return nil
		}
	}
	return fmt.Errorf("iommu: no region mapped at %#x", base)
}

// MappedPages returns the total number of currently registered pages —
// the working-set size that competes for the 128 IOTLB entries.
func (u *IOMMU) MappedPages() int64 { return u.mappedPages.Value() }

// regionFor finds the mapping containing iova, or nil.
func (u *IOMMU) regionFor(iova uint64) *mapping {
	for i := range u.mappings {
		m := &u.mappings[i]
		if iova >= m.base && iova < m.base+m.size {
			return m
		}
	}
	return nil
}

// Translate resolves every page touched by a DMA of size bytes starting
// at iova, then invokes done with the aggregate result. With the IOMMU
// disabled it completes immediately (descriptors carry physical
// addresses). With it enabled, each page is looked up in the device TLB
// (if any), then the IOTLB; misses trigger a page walk whose memory reads
// go through the memory controller and therefore feel its current load.
func (u *IOMMU) Translate(iova uint64, size int, done func(TranslationResult)) {
	if size <= 0 {
		panic("iommu: non-positive DMA size")
	}
	if !u.cfg.Enabled {
		done(TranslationResult{Pages: 1})
		return
	}
	if u.cfg.Mode == StrictMode {
		u.translateStrict(iova, size, done)
		return
	}
	m := u.regionFor(iova)
	if m == nil {
		u.faults.Inc()
		done(TranslationResult{Fault: fmt.Errorf("iommu: DMA fault at %#x (unmapped)", iova)})
		return
	}
	// Enumerate the distinct pages the DMA touches within the region's
	// granularity. A fault mid-DMA aborts the remainder.
	first := iova >> m.ps.Shift()
	last := (iova + uint64(size) - 1) >> m.ps.Shift()
	res := TranslationResult{Pages: int(last - first + 1)}
	u.translatePage(first, last, m, res, done)
}

// translateStrict performs the per-DMA map → translate → unmap cycle of
// strict mode. The freshly created mapping has no cached translation, so
// every touched page cold-misses and walks; the unmap queues an IOTLB
// invalidation whose latency is folded into StrictMapLatency. Because
// mappings are transient, strict mode also ignores the registered-region
// table: any address is mappable (protection comes from the per-DMA
// windows themselves).
func (u *IOMMU) translateStrict(iova uint64, size int, done func(TranslationResult)) {
	// Strict-mode DMA windows are 4 KB-mapped regardless of backing.
	first := iova >> Page4K.Shift()
	last := (iova + uint64(size) - 1) >> Page4K.Shift()
	res := TranslationResult{Pages: int(last - first + 1)}
	u.strictMaps.Inc()
	u.engine.After(u.cfg.StrictMapLatency, func() {
		u.strictWalkAll(int(last-first+1), res, done)
	})
}

// strictWalkAll walks n freshly mapped pages back to back.
func (u *IOMMU) strictWalkAll(n int, res TranslationResult, done func(TranslationResult)) {
	if n == 0 {
		done(res)
		return
	}
	u.translations.Inc()
	u.misses.Inc()
	u.observeMiss(true)
	res.Misses++
	// The fresh mapping shares upper levels with previous windows, so
	// the PWC usually covers them; the leaf is always read.
	res.WalkAccesses++
	u.walk(1, func() {
		u.strictWalkAll(n-1, res, done)
	})
}

// translatePage resolves pages [page, last] sequentially (hardware
// pipelines these, but sequential resolution both simplifies the model and
// matches the per-DMA latency accounting of §3.1's throughput bound).
func (u *IOMMU) translatePage(page, last uint64, m *mapping, res TranslationResult, done func(TranslationResult)) {
	iova := page << m.ps.Shift()
	if mm := u.regionFor(iova); mm == nil {
		u.faults.Inc()
		res.Fault = fmt.Errorf("iommu: DMA fault at %#x (unmapped)", iova)
		done(res)
		return
	}
	u.translations.Inc()
	key := makeKey(iova, m.ps)

	if u.devTLB != nil && u.devTLB.lookup(key) {
		u.devHits.Inc()
		u.observeMiss(false)
		u.next(page, last, m, res, done)
		return
	}
	if u.iotlb.lookup(key) {
		u.hits.Inc()
		u.observeMiss(false)
		if u.devTLB != nil {
			u.devTLB.insert(key)
		}
		// A hit costs a few ns; fold it in as a scheduled step so hit
		// latency still appears in the DMA timeline.
		u.engine.After(u.cfg.TLBHitLatency, func() {
			u.next(page, last, m, res, done)
		})
		return
	}

	// IOTLB miss: walk the levels not covered by the page-walk caches.
	u.misses.Inc()
	u.observeMiss(true)
	res.Misses++
	reads := u.walkReadsNeeded(iova, m.ps)
	res.WalkAccesses += reads
	u.walk(reads, func() {
		u.iotlb.insert(key)
		if u.devTLB != nil {
			u.devTLB.insert(key)
		}
		u.next(page, last, m, res, done)
	})
}

// next advances to the following page or completes.
func (u *IOMMU) next(page, last uint64, m *mapping, res TranslationResult, done func(TranslationResult)) {
	if page == last {
		done(res)
		return
	}
	u.translatePage(page+1, last, m, res, done)
}

// walkReadsNeeded consults the page-walk caches: each upper level hit
// skips one memory read; the leaf level is always read. It also installs
// the upper-level entries (a real walker caches as it descends).
func (u *IOMMU) walkReadsNeeded(iova uint64, ps PageSize) int {
	levels := ps.WalkLevels()
	reads := 1 // leaf entry is always fetched on an IOTLB miss
	for lvl := 0; lvl < levels-1; lvl++ {
		// Key each level by the address bits above that level's reach:
		// L0 (root) covers 39+9 bits per level below it.
		shift := uint(12 + 9*(3-lvl)) // 39, 30, 21 for levels 0,1,2
		k := iova>>shift<<3 | uint64(lvl)
		if !u.pwc[lvl].lookup(k) {
			reads++
			u.pwc[lvl].insert(k)
		}
	}
	return reads
}

// walk performs n sequential page-table reads through the memory
// controller, then calls done. Sequential chaining is what couples walk
// cost to memory-bus load (§3.2's "larger PCIe latencies further degrade
// the throughput").
func (u *IOMMU) walk(n int, done func()) {
	if n == 0 {
		done()
		return
	}
	u.walkReads.Inc()
	u.memory.Read(u.cfg.WalkEntryBytes, func() {
		u.engine.After(u.cfg.WalkStepLatency, func() {
			u.walk(n-1, done)
		})
	})
}

// Stats is a snapshot of translation activity.
type Stats struct {
	Translations uint64
	Hits         uint64
	Misses       uint64
	DeviceHits   uint64
	WalkReads    uint64
	Faults       uint64
}

// Stats returns current counters.
func (u *IOMMU) Stats() Stats {
	return Stats{
		Translations: u.translations.Value(),
		Hits:         u.hits.Value(),
		Misses:       u.misses.Value(),
		DeviceHits:   u.devHits.Value(),
		WalkReads:    u.walkReads.Value(),
		Faults:       u.faults.Value(),
	}
}
