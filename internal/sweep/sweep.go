// Package sweep provides a declarative parameter-sweep harness over
// core.Params: name the axes (field + values), and the sweep runs the
// cross product in parallel, emitting one row per point with the headline
// measurements. cmd/hicsweep exposes it as a JSON-driven tool, so new
// explorations need no new Go code.
package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hic/internal/asciiplot"
	"hic/internal/core"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// Axis is one swept dimension: a named parameter and its values.
type Axis struct {
	// Param names the swept knob; see Apply for the accepted names.
	Param string `json:"param"`
	// Values are the points along this axis.
	Values []float64 `json:"values"`
}

// Spec is a full sweep: a base scenario and the axes to cross.
type Spec struct {
	// Base is the starting scenario (zero value ⇒ core.DefaultParams(12)
	// with Threads overridable by an axis).
	Base core.Params `json:"base"`
	// Axes are crossed in order; the last axis varies fastest.
	Axes []Axis `json:"axes"`
}

// knownParams maps axis names to Params mutations.
var knownParams = map[string]func(*core.Params, float64){
	"threads":          func(p *core.Params, v float64) { p.Threads = int(v) },
	"senders":          func(p *core.Params, v float64) { p.Senders = int(v) },
	"region_mb":        func(p *core.Params, v float64) { p.RxRegionBytes = uint64(v) << 20 },
	"iommu":            func(p *core.Params, v float64) { p.IOMMU = v != 0 },
	"hugepages":        func(p *core.Params, v float64) { p.Hugepages = v != 0 },
	"antagonists":      func(p *core.Params, v float64) { p.AntagonistCores = int(v) },
	"host_target_us":   func(p *core.Params, v float64) { p.HostTarget = sim.Duration(v) * sim.Microsecond },
	"nic_buffer_kb":    func(p *core.Params, v float64) { p.NICBufferBytes = int(v) << 10 },
	"device_tlb":       func(p *core.Params, v float64) { p.DeviceTLBEntries = int(v) },
	"link_scale":       func(p *core.Params, v float64) { p.LinkLatencyScale = v },
	"io_reserved":      func(p *core.Params, v float64) { p.MemoryIOReservedShare = v },
	"offered_gbps":     func(p *core.Params, v float64) { p.OfferedGbps = v },
	"subrtt":           func(p *core.Params, v float64) { p.SubRTTHostECN = v != 0 },
	"strict_iommu":     func(p *core.Params, v float64) { p.StrictIOMMU = v != 0 },
	"cpu_cores":        func(p *core.Params, v float64) { p.CPUCores = int(v) },
	"remote_numa":      func(p *core.Params, v float64) { p.AntagonistRemoteNUMA = v != 0 },
	"per_queue_bufs":   func(p *core.Params, v float64) { p.PerQueueNICBuffers = v != 0 },
	"victim_conn_gbps": func(p *core.Params, v float64) { p.VictimConnGbps = v },
	"burst_duty":       func(p *core.Params, v float64) { p.BurstDuty = v },
	"seed":             func(p *core.Params, v float64) { p.Seed = uint64(v) },
}

// KnownParams lists the accepted axis names, sorted.
func KnownParams() []string {
	names := make([]string, 0, len(knownParams))
	for n := range knownParams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks the spec before running.
func (s Spec) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: no axes")
	}
	total := 1
	for _, a := range s.Axes {
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", a.Param)
		}
		if _, ok := knownParams[a.Param]; !ok {
			return fmt.Errorf("sweep: unknown parameter %q (known: %s)",
				a.Param, strings.Join(KnownParams(), ", "))
		}
		total *= len(a.Values)
		if total > 4096 {
			return fmt.Errorf("sweep: cross product exceeds 4096 points")
		}
	}
	return nil
}

// Row is one sweep point's coordinates and measurements. Telemetry is
// non-nil only for RunDetailed sweeps; Incidents only for RunObserved
// sweeps.
type Row struct {
	Coords    []float64
	Results   core.Results
	Telemetry *telemetry.Summary
	// TelemetrySkippedFluid marks a detailed-sweep point that was
	// fluid-routed by the executor: the analytical solver has no packet
	// path, so there are no spans to record and Telemetry is nil. The
	// JSONL exporter skips these rows and reports the count instead of
	// emitting empty span records.
	TelemetrySkippedFluid bool
	// Incidents is the sim-time observatory report for this grid point
	// (RunObserved sweeps only): the congestion episodes the host
	// experienced, with root-cause attribution.
	Incidents *observatory.HostReport
}

// points enumerates the cross product and lowers each coordinate vector
// onto a Params.
func points(spec Spec) ([][]float64, []core.Params) {
	base := spec.Base
	if base.Threads == 0 {
		base = core.DefaultParams(12)
	}
	var coords [][]float64
	var rec func(prefix []float64, depth int)
	rec = func(prefix []float64, depth int) {
		if depth == len(spec.Axes) {
			coords = append(coords, append([]float64(nil), prefix...))
			return
		}
		for _, v := range spec.Axes[depth].Values {
			rec(append(prefix, v), depth+1)
		}
	}
	rec(nil, 0)

	ps := make([]core.Params, len(coords))
	for i, c := range coords {
		p := base
		for d, v := range c {
			knownParams[spec.Axes[d].Param](&p, v)
		}
		ps[i] = p
	}
	return coords, ps
}

// Run executes the cross product. Points run in parallel via
// core.RunMany; rows come back in axis order (last axis fastest).
func Run(spec Spec) ([]Row, error) {
	return RunCached(spec, nil)
}

// RunCached is Run with a content-addressed result cache: grid points
// whose Params were simulated before (same SimVersion) replay from the
// store, so editing one axis of a big sweep recomputes only the new
// points. A nil cache degrades to Run.
func RunCached(spec Spec, cache *runcache.Store) ([]Row, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	coords, ps := points(spec)
	rs, err := core.RunManyCached(ps, cache)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(coords))
	for i := range coords {
		rows[i] = Row{Coords: coords[i], Results: rs[i]}
	}
	return rows, nil
}

// RunCachedVia is RunCached with an executor routing each grid point
// (see core.Executor and internal/fidelity). A nil executor degrades to
// RunCached.
func RunCachedVia(spec Spec, exec core.Executor, cache *runcache.Store) ([]Row, error) {
	if exec == nil {
		return RunCached(spec, cache)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	coords, ps := points(spec)
	rs, err := core.RunManyVia(exec, ps, cache)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(coords))
	for i := range coords {
		rows[i] = Row{Coords: coords[i], Results: rs[i]}
	}
	return rows, nil
}

// RunStream executes the cross product and hands each Row to emit in
// axis order (last axis fastest) without holding the full row slice —
// the path hicsweep uses to write CSV/JSONL with memory bounded by the
// worker count rather than the grid size. A non-nil emit error aborts
// the sweep.
func RunStream(spec Spec, cache *runcache.Store, emit func(Row) error) error {
	return RunStreamVia(spec, nil, cache, emit)
}

// RunStreamVia is RunStream with an executor routing each grid point
// (see core.Executor and internal/fidelity). A nil executor is
// byte-identical to RunStream.
func RunStreamVia(spec Spec, exec core.Executor, cache *runcache.Store, emit func(Row) error) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	coords, ps := points(spec)
	var orun *obs.Run // nil-safe
	if s := obs.Default(); s != nil {
		orun = s.StartRun("sweep", int64(len(ps)))
		defer orun.Finish()
	}
	return core.RunEachVia(exec, ps, cache, func(i int, r core.Results) error {
		orun.Advance(1)
		return emit(Row{Coords: coords[i], Results: r})
	})
}

// RunDetailed is Run with per-point pipeline telemetry: every grid point
// executes with span sampling at spanRate and its Row carries the
// telemetry summary (per-stage latency breakdown + drop attribution).
// Points run on the shared worker pool like Run; each point's spans stay
// deterministic because sampling draws from that point's own
// engine-forked RNG.
func RunDetailed(spec Spec, spanRate float64) ([]Row, error) {
	return RunDetailedVia(spec, nil, spanRate)
}

// RunDetailedVia is RunDetailed with an executor routing each grid
// point. Points the executor routes to the fluid solver carry no span
// telemetry — the analytical model has no packet path to instrument —
// so their rows return the fluid result with TelemetrySkippedFluid set
// and a nil Telemetry, instead of silently emitting empty span records.
// DES-routed points (including ones an early-stop rule would truncate)
// run full-window instrumented DES: telemetry sweeps exist to inspect
// the packet path, so the measurement window is never cut short here.
// A nil executor instruments every point.
func RunDetailedVia(spec Spec, exec core.Executor, spanRate float64) ([]Row, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	coords, ps := points(spec)
	rows := make([]Row, len(coords))
	var orun *obs.Run // nil-safe
	if s := obs.Default(); s != nil {
		orun = s.StartRun("sweep-telemetry", int64(len(ps)))
		defer orun.Finish()
	}
	err := runner.Shared().Map(len(ps), func(i int, a *runner.Arena) error {
		defer orun.Advance(1)
		if exec != nil {
			version, run, err := core.PlanVia(exec, ps[i])
			if err != nil {
				return err
			}
			if strings.HasPrefix(version, core.FluidVersion) {
				res, err := run(a)
				if err != nil {
					return err
				}
				rows[i] = Row{Coords: coords[i], Results: res, TelemetrySkippedFluid: true}
				return nil
			}
		}
		res, run, err := core.RunInstrumentedOn(ps[i], spanRate, a)
		if err != nil {
			return err
		}
		s := run.Summary()
		rows[i] = Row{Coords: coords[i], Results: res, Telemetry: &s}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunObserved is Run with the sim-time observatory attached to every
// grid point: each point executes full DES (the observatory watches the
// simulated datapath, which the fluid solver and the run cache cannot
// reproduce) and its Row carries the incident report — congestion
// episodes with peak severity, drop counts, and root-cause attribution.
// Sampling is passive, so Results are bit-identical to Run's.
func RunObserved(spec Spec, ocfg observatory.Config) ([]Row, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	coords, ps := points(spec)
	rows := make([]Row, len(coords))
	var orun *obs.Run // nil-safe
	if s := obs.Default(); s != nil {
		orun = s.StartRun("sweep-observatory", int64(len(ps)))
		defer orun.Finish()
	}
	err := runner.Shared().Map(len(ps), func(i int, a *runner.Arena) error {
		defer orun.Advance(1)
		res, rep, err := core.RunObservedOn(ps[i], ocfg, a)
		if err != nil {
			return err
		}
		for j := range rep.Episodes {
			rep.Episodes[j].Host = i
		}
		rows[i] = Row{Coords: coords[i], Results: res, Incidents: rep}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// IncidentsJSONL renders one JSON object per observed sweep point: the
// axis coordinates, the headline measurements, and the incident report
// (episodes carry the grid-point index in their host field). One line
// per grid point for streaming/grepping downstream.
func IncidentsJSONL(spec Spec, rows []Row) (string, error) {
	var b strings.Builder
	for _, r := range rows {
		point := make(map[string]any, len(spec.Axes)+3)
		for d, a := range spec.Axes {
			point[a.Param] = r.Coords[d]
		}
		point["gbps"] = r.Results.AppThroughputGbps
		point["drop_pct"] = r.Results.DropRatePct
		point["incidents"] = r.Incidents
		line, err := json.Marshal(point)
		if err != nil {
			return "", fmt.Errorf("sweep: encoding incident row: %w", err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// TelemetryJSONL renders one JSON object per sweep point: the axis
// coordinates, the headline measurements, and the telemetry summary.
// One line per grid point, so downstream tooling can stream or grep it.
// Fluid-routed points (TelemetrySkippedFluid) carry no spans and are
// skipped rather than written as empty records; when any were skipped a
// final trailer line {"telemetry_skipped_fluid": N} reports the count
// so the omission is visible in the artifact itself.
func TelemetryJSONL(spec Spec, rows []Row) (string, error) {
	var b strings.Builder
	skipped := 0
	for _, r := range rows {
		if r.TelemetrySkippedFluid {
			skipped++
			continue
		}
		point := make(map[string]any, len(spec.Axes)+3)
		for d, a := range spec.Axes {
			point[a.Param] = r.Coords[d]
		}
		point["gbps"] = r.Results.AppThroughputGbps
		point["drop_pct"] = r.Results.DropRatePct
		point["telemetry"] = r.Telemetry
		line, err := json.Marshal(point)
		if err != nil {
			return "", fmt.Errorf("sweep: encoding telemetry row: %w", err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "{\"telemetry_skipped_fluid\": %d}\n", skipped)
	}
	return b.String(), nil
}

// CSV renders the rows with one column per axis plus the headline
// measurement columns.
func CSV(spec Spec, rows []Row) string {
	cols := make([]string, 0, len(spec.Axes)+7)
	for _, a := range spec.Axes {
		cols = append(cols, a.Param)
	}
	cols = append(cols, "gbps", "drop_pct", "misses_per_pkt", "membw_gbps",
		"hostdelay_p99_us", "read_p99_us", "fairness")
	var cells [][]string
	for _, r := range rows {
		row := make([]string, 0, len(cols))
		for _, c := range r.Coords {
			row = append(row, fmt.Sprintf("%g", c))
		}
		res := r.Results
		row = append(row,
			fmt.Sprintf("%.2f", res.AppThroughputGbps),
			fmt.Sprintf("%.3f", res.DropRatePct),
			fmt.Sprintf("%.3f", res.IOTLBMissesPerPacket),
			fmt.Sprintf("%.2f", res.MemoryBandwidthGBps),
			fmt.Sprintf("%.1f", float64(res.HostDelayP99)/1000),
			fmt.Sprintf("%.1f", float64(res.ReadLatencyP99)/1000),
			fmt.Sprintf("%.3f", res.FairnessIndex),
		)
		cells = append(cells, row)
	}
	return asciiplot.CSV(cols, cells)
}

// Table renders the rows as an aligned text table.
func Table(spec Spec, rows []Row) string {
	csv := CSV(spec, rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	cols := strings.Split(lines[0], ",")
	var cells [][]string
	for _, l := range lines[1:] {
		cells = append(cells, strings.Split(l, ","))
	}
	return asciiplot.FormatTable(cols, cells)
}
