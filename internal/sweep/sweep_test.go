package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"hic/internal/core"
	"hic/internal/observatory"
	"hic/internal/runner"
	"hic/internal/sim"
)

func quickBase() core.Params {
	p := core.DefaultParams(4)
	p.Senders = 8
	p.Warmup = 2 * sim.Millisecond
	p.Measure = 3 * sim.Millisecond
	return p
}

func TestValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{}, false},
		{Spec{Axes: []Axis{{Param: "threads", Values: nil}}}, false},
		{Spec{Axes: []Axis{{Param: "bogus", Values: []float64{1}}}}, false},
		{Spec{Axes: []Axis{{Param: "threads", Values: []float64{2, 4}}}}, true},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, ok = %v", i, err, c.ok)
		}
	}
	// Cross-product explosion guard.
	big := make([]float64, 100)
	spec := Spec{Axes: []Axis{
		{Param: "threads", Values: big},
		{Param: "senders", Values: big},
	}}
	if err := spec.Validate(); err == nil {
		t.Error("10000-point sweep accepted")
	}
}

func TestKnownParamsComplete(t *testing.T) {
	names := KnownParams()
	if len(names) != len(knownParams) {
		t.Errorf("KnownParams returned %d of %d", len(names), len(knownParams))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestRunCrossProductOrder(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{
			{Param: "threads", Values: []float64{2, 4}},
			{Param: "iommu", Values: []float64{1, 0}},
		},
	}
	rows, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	wantCoords := [][]float64{{2, 1}, {2, 0}, {4, 1}, {4, 0}}
	for i, r := range rows {
		for d := range wantCoords[i] {
			if r.Coords[d] != wantCoords[i][d] {
				t.Fatalf("row %d coords = %v, want %v", i, r.Coords, wantCoords[i])
			}
		}
		if r.Results.Goodput == 0 {
			t.Errorf("row %d produced no goodput", i)
		}
	}
	// CPU-bound points: 4 threads ≈ 2× the 2-thread throughput.
	if !(rows[2].Results.AppThroughputGbps > 1.5*rows[0].Results.AppThroughputGbps) {
		t.Errorf("thread scaling missing: %v vs %v",
			rows[0].Results.AppThroughputGbps, rows[2].Results.AppThroughputGbps)
	}
}

func TestCSVAndTable(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{{Param: "threads", Values: []float64{2}}},
	}
	rows, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(spec, rows)
	if !strings.HasPrefix(csv, "threads,gbps,") {
		t.Errorf("CSV header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 2 {
		t.Errorf("CSV rows wrong:\n%s", csv)
	}
	table := Table(spec, rows)
	if !strings.Contains(table, "threads") || !strings.Contains(table, "---") {
		t.Errorf("table malformed:\n%s", table)
	}
}

func TestEveryKnownParamApplies(t *testing.T) {
	// Applying each knob must yield a runnable scenario (value chosen to
	// be safe for every knob).
	safe := map[string]float64{
		"threads": 2, "senders": 4, "region_mb": 8, "iommu": 1, "hugepages": 1,
		"antagonists": 2, "host_target_us": 100, "nic_buffer_kb": 512,
		"device_tlb": 128, "link_scale": 0.5, "io_reserved": 0.1,
		"offered_gbps": 10, "subrtt": 1, "strict_iommu": 0, "cpu_cores": 2,
		"remote_numa": 1, "per_queue_bufs": 1, "victim_conn_gbps": 0.05,
		"burst_duty": 0.5, "seed": 3,
	}
	for name := range knownParams {
		v, ok := safe[name]
		if !ok {
			t.Fatalf("no safe value for %q; update the test", name)
		}
		p := quickBase()
		knownParams[name](&p, v)
		if _, err := core.Run(p); err != nil {
			t.Errorf("param %q with value %v: %v", name, v, err)
		}
	}
}

func TestRunDetailedTelemetry(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{{Param: "antagonists", Values: []float64{0, 8}}},
	}
	rows, err := RunDetailed(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Telemetry == nil {
			t.Fatalf("row %d has no telemetry", i)
		}
		if r.Telemetry.SampleRate != 0.05 {
			t.Errorf("row %d sample rate = %v", i, r.Telemetry.SampleRate)
		}
		if r.Telemetry.Spans == 0 {
			t.Errorf("row %d sampled no spans", i)
		}
	}

	jsonl, err := TelemetryJSONL(spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for i, line := range lines {
		var point map[string]any
		if err := json.Unmarshal([]byte(line), &point); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		for _, key := range []string{"antagonists", "gbps", "drop_pct", "telemetry"} {
			if _, ok := point[key]; !ok {
				t.Errorf("line %d missing key %q", i, key)
			}
		}
	}
	// The antagonised point should attribute its drops to the memory bus.
	var antag map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &antag); err != nil {
		t.Fatal(err)
	}
	if antag["antagonists"].(float64) != 8 {
		t.Fatalf("row order changed: %v", antag["antagonists"])
	}
}

// Plain Run must keep Telemetry nil — detailed mode is opt-in.
func TestRunLeavesTelemetryNil(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{{Param: "threads", Values: []float64{2}}},
	}
	rows, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Telemetry != nil {
		t.Error("plain Run attached telemetry")
	}
}

// fluidForZeroAntagonists routes antagonist-free points to a fake fluid
// plan (FluidVersion-salted, canned results) and everything else to
// pure DES — the shape RunDetailedVia must recognize and skip.
type fluidForZeroAntagonists struct{}

func (fluidForZeroAntagonists) Plan(p core.Params) (string, func(*runner.Arena) (core.Results, error), error) {
	if p.AntagonistCores == 0 {
		return core.FluidVersion + "-test", func(a *runner.Arena) (core.Results, error) {
			return core.Results{AppThroughputGbps: 42}, nil
		}, nil
	}
	return core.DES{}.Plan(p)
}

func TestRunDetailedViaSkipsFluidTelemetry(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{{Param: "antagonists", Values: []float64{0, 4}}},
	}
	rows, err := RunDetailedVia(spec, fluidForZeroAntagonists{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}

	fluid, des := rows[0], rows[1]
	if !fluid.TelemetrySkippedFluid {
		t.Error("fluid-routed row not marked TelemetrySkippedFluid")
	}
	if fluid.Telemetry != nil {
		t.Error("fluid-routed row carries a telemetry summary")
	}
	if fluid.Results.AppThroughputGbps != 42 {
		t.Errorf("fluid-routed row lost its results: %+v", fluid.Results)
	}
	if des.TelemetrySkippedFluid {
		t.Error("DES row marked skipped")
	}
	if des.Telemetry == nil {
		t.Fatal("DES row has no telemetry summary")
	}

	jsonl, err := TelemetryJSONL(spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL = %d lines, want 2 (one DES point + trailer):\n%s", len(lines), jsonl)
	}
	var point map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &point); err != nil {
		t.Fatalf("point line: %v", err)
	}
	if point["antagonists"] != 4.0 {
		t.Errorf("surviving point = %v, want the antagonists=4 one", point["antagonists"])
	}
	if point["telemetry"] == nil {
		t.Error("point line has no telemetry object")
	}
	var trailer map[string]int
	if err := json.Unmarshal([]byte(lines[1]), &trailer); err != nil {
		t.Fatalf("trailer line: %v", err)
	}
	if trailer["telemetry_skipped_fluid"] != 1 {
		t.Errorf("trailer = %v, want telemetry_skipped_fluid=1", trailer)
	}
}

func TestRunDetailedNoExecUnchanged(t *testing.T) {
	spec := Spec{
		Base: quickBase(),
		Axes: []Axis{{Param: "antagonists", Values: []float64{0}}},
	}
	rows, err := RunDetailedVia(spec, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].TelemetrySkippedFluid || rows[0].Telemetry == nil {
		t.Errorf("nil-executor sweep must instrument every point: %+v", rows[0].TelemetrySkippedFluid)
	}
}

// TestRunObservedAndIncidentsJSONL: an observed sweep attaches the
// observatory to every grid point, its Results stay identical to a
// plain sweep, and the JSONL export carries one line per point with
// the incident report inline.
func TestRunObservedAndIncidentsJSONL(t *testing.T) {
	spec := Spec{Base: quickBase(), Axes: []Axis{
		{Param: "antagonists", Values: []float64{0, 8}},
	}}
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunObserved(spec, observatory.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Results != plain[i].Results {
			t.Errorf("point %d: observed Results differ from plain sweep (sampling must be passive)", i)
		}
		if r.Incidents == nil || r.Incidents.Samples == 0 {
			t.Fatalf("point %d carries no incident report", i)
		}
		for _, e := range r.Incidents.Episodes {
			if e.Host != i {
				t.Errorf("point %d episode stamped host %d", i, e.Host)
			}
		}
	}

	jsonl, err := IncidentsJSONL(spec, rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	for i, l := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(l), &obj); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		for _, k := range []string{"antagonists", "gbps", "drop_pct", "incidents"} {
			if _, ok := obj[k]; !ok {
				t.Errorf("line %d missing %q: %s", i, k, l)
			}
		}
	}
}
