package sender

import (
	"testing"

	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

func newHost(t *testing.T, cfg Config) (*sim.Engine, *Host, *[]*pkt.Packet) {
	t.Helper()
	e := sim.NewEngine(1)
	var out []*pkt.Packet
	h, err := New(e, metrics.NewRegistry(), cfg, func(p *pkt.Packet) { out = append(out, p) })
	if err != nil {
		t.Fatal(err)
	}
	return e, h, &out
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := New(e, metrics.NewRegistry(), Config{TxQueuePackets: 0, LinkRate: 1, Memory: DefaultConfig().Memory}, func(*pkt.Packet) {}); err == nil {
		t.Error("zero queue accepted")
	}
	if _, err := New(e, metrics.NewRegistry(), Config{TxQueuePackets: 1, LinkRate: 0, Memory: DefaultConfig().Memory}, func(*pkt.Packet) {}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(e, metrics.NewRegistry(), DefaultConfig(), nil); err == nil {
		t.Error("nil emit accepted")
	}
}

func TestSendEmitsInOrder(t *testing.T) {
	e, h, out := newHost(t, DefaultConfig())
	for i := 0; i < 20; i++ {
		h.Send(pkt.NewData(uint64(i), 1, 0, uint64(i), 4096))
	}
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*out) != 20 {
		t.Fatalf("emitted %d/20", len(*out))
	}
	for i, p := range *out {
		if p.Seq != uint64(i) {
			t.Fatalf("out of order at %d: seq %d", i, p.Seq)
		}
	}
	if h.Stats().Sent != 20 {
		t.Errorf("Sent = %d", h.Stats().Sent)
	}
}

func TestLinkRateBoundsThroughput(t *testing.T) {
	e := sim.NewEngine(1)
	var lastEmit sim.Time
	count := 0
	h, err := New(e, metrics.NewRegistry(), DefaultConfig(), func(*pkt.Packet) {
		count++
		lastEmit = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		h.Send(pkt.NewData(uint64(i), 1, 0, uint64(i), 4096))
	}
	e.Run(e.Now().Add(sim.Second))
	if count != n {
		t.Fatalf("emitted %d/%d", count, n)
	}
	// n × 4452 B at 100 Gbps ≈ 356 µs of serialization.
	gbps := float64(n*4452*8) / float64(lastEmit)
	if gbps > 101 {
		t.Errorf("egress rate %.1f Gbps exceeds the 100 Gbps link", gbps)
	}
	if gbps < 90 {
		t.Errorf("egress rate %.1f Gbps far below a saturated link", gbps)
	}
}

func TestBackpressureNeverDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxQueuePackets = 4
	e, h, out := newHost(t, cfg)
	const n = 200
	for i := 0; i < n; i++ {
		h.Send(pkt.NewData(uint64(i), 1, 0, uint64(i), 4096))
	}
	if h.WaitingPackets() == 0 {
		t.Fatal("no backpressure despite a 4-deep queue")
	}
	if h.Stats().Backpressured == 0 {
		t.Error("backpressure counter not incremented")
	}
	e.Run(e.Now().Add(10 * sim.Millisecond))
	// The defining sender-side property: everything eventually leaves,
	// nothing is dropped.
	if len(*out) != n {
		t.Fatalf("emitted %d/%d after backpressure", len(*out), n)
	}
	if h.QueuedPackets() != 0 || h.WaitingPackets() != 0 {
		t.Errorf("queues not drained: nic=%d sw=%d", h.QueuedPackets(), h.WaitingPackets())
	}
}

func TestMemoryContentionDelaysButDoesNotDrop(t *testing.T) {
	cfg := DefaultConfig()
	e, h, out := newHost(t, cfg)
	// Saturate the sender's memory bus.
	h.Memory().SetCPUDemand("antagonist", 150e9)
	e.Run(e.Now().Add(100 * sim.Microsecond))
	const n = 100
	for i := 0; i < n; i++ {
		h.Send(pkt.NewData(uint64(i), 1, 0, uint64(i), 4096))
	}
	e.Run(e.Now().Add(50 * sim.Millisecond))
	if len(*out) != n {
		t.Fatalf("memory contention caused loss: %d/%d", len(*out), n)
	}
	if h.Stats().TxDelayP99Ns <= 0 {
		t.Error("no TX delay recorded")
	}
}
