// Package sender models the transmit-side host datapath of a sender
// machine: the stack enqueues packets into a bounded NIC TX queue, the
// NIC fetches payload from host memory by DMA and serializes it onto the
// wire. The defining property — the paper's footnote 1 — is
// *backpressure*: when the TX path backs up (deep queue, contended
// memory), the NIC simply admits no more work and the stack holds its
// packets, so the sender side experiences delay but never the buffer
// overflows that plague the receive side. This package exists to
// demonstrate that asymmetry (the ext-sender experiment).
package sender

import (
	"fmt"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

// Config sizes a sender host's TX path.
type Config struct {
	// TxQueuePackets bounds the NIC TX queue; a full queue backpressures
	// the stack (packets wait in software, nothing is dropped).
	TxQueuePackets int
	// LinkRate is the egress serialization rate.
	LinkRate sim.BitsPerSecond
	// Memory configures the sender's NUMA node.
	Memory mem.Config
}

// DefaultConfig returns a 100 Gbps sender host.
func DefaultConfig() Config {
	return Config{
		TxQueuePackets: 128,
		LinkRate:       sim.Gbps(100),
		Memory:         mem.DefaultConfig(),
	}
}

func (c Config) validate() error {
	if c.TxQueuePackets <= 0 {
		return fmt.Errorf("sender: TxQueuePackets must be positive")
	}
	if c.LinkRate <= 0 {
		return fmt.Errorf("sender: LinkRate must be positive")
	}
	return nil
}

// Host is one sender machine's TX path.
type Host struct {
	engine *sim.Engine
	cfg    Config
	memory *mem.Controller
	emit   func(*pkt.Packet)

	queued    int
	busyUntil sim.Time
	waiting   []*pkt.Packet // stack-side backpressure queue

	sent        *metrics.Counter
	backpressed *metrics.Counter
	txDelay     *metrics.Histogram
}

// New constructs a sender host. emit puts a packet on the wire (the
// fabric's sender ingress).
func New(engine *sim.Engine, reg *metrics.Registry, cfg Config, emit func(*pkt.Packet)) (*Host, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("sender: emit is required")
	}
	memory, err := mem.New(engine, reg, cfg.Memory)
	if err != nil {
		return nil, err
	}
	return &Host{
		engine:      engine,
		cfg:         cfg,
		memory:      memory,
		emit:        emit,
		sent:        reg.Counter("sender.tx.packets"),
		backpressed: reg.Counter("sender.tx.backpressure"),
		txDelay:     reg.Histogram("sender.tx.delay.ns"),
	}, nil
}

// Memory exposes the sender's memory controller (antagonists attach
// here in the ext-sender experiment).
func (h *Host) Memory() *mem.Controller { return h.memory }

// QueuedPackets returns the TX queue depth (NIC-side).
func (h *Host) QueuedPackets() int { return h.queued }

// WaitingPackets returns the stack-side backpressure queue depth.
func (h *Host) WaitingPackets() int { return len(h.waiting) }

// Send transmits a packet through the TX path. If the NIC queue is
// full, the packet waits in software — backpressure, never loss.
//
// Free-list ownership: Send takes ownership of p and hands it to emit
// when it reaches the wire. Because the TX path backpressures instead of
// dropping (the paper's footnote-1 asymmetry), no packet ever dies here
// and the sender host never calls pkt.Pool.Release — death happens
// downstream, at the fabric switch, the receiver NIC, or delivery.
func (h *Host) Send(p *pkt.Packet) {
	if h.queued >= h.cfg.TxQueuePackets {
		h.backpressed.Inc()
		h.waiting = append(h.waiting, p)
		return
	}
	h.admit(p)
}

// admit starts the TX DMA: fetch the payload from host memory, then
// serialize it onto the wire.
func (h *Host) admit(p *pkt.Packet) {
	h.queued++
	start := h.engine.Now()
	h.memory.Read(p.WireBytes, func() {
		tx := h.busyUntil
		if now := h.engine.Now(); tx < now {
			tx = now
		}
		finish := tx.Add(h.cfg.LinkRate.TransmitTime(p.WireBytes))
		h.busyUntil = finish
		h.engine.At(finish, func() {
			h.queued--
			h.sent.Inc()
			h.txDelay.Observe(float64(h.engine.Now().Sub(start)))
			h.emit(p)
			// Admission order is FIFO: the oldest waiting packet takes
			// the freed slot.
			if len(h.waiting) > 0 && h.queued < h.cfg.TxQueuePackets {
				next := h.waiting[0]
				h.waiting = h.waiting[1:]
				h.admit(next)
			}
		})
	})
}

// Stats is a snapshot of TX activity.
type Stats struct {
	Sent          uint64
	Backpressured uint64
	TxDelayP99Ns  float64
}

// Stats returns current counters.
func (h *Host) Stats() Stats {
	return Stats{
		Sent:          h.sent.Value(),
		Backpressured: h.backpressed.Value(),
		TxDelayP99Ns:  h.txDelay.Quantile(0.99),
	}
}
