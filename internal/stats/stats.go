// Package stats provides the small statistical toolkit the experiment
// harness uses for multi-seed replication: summary statistics,
// Student-t confidence intervals, and correlation. Simulation results
// are deterministic per seed; replicating across seeds and reporting
// mean ± CI separates calibration signal from seed noise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes summary statistics. An empty sample returns zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees
// of freedom (1-30), falling back to the normal 1.96 beyond.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval
// for the mean. Samples of size < 2 have no interval (returns 0).
func CI95(xs []float64) float64 {
	s := Summarize(xs)
	if s.N < 2 {
		return 0
	}
	df := s.N - 1
	t := 1.96
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * s.Stddev / math.Sqrt(float64(s.N))
}

// MeanCI formats "mean ± ci" with the given precision.
func MeanCI(xs []float64, decimals int) string {
	s := Summarize(xs)
	ci := CI95(xs)
	if s.N < 2 {
		return fmt.Sprintf("%.*f", decimals, s.Mean)
	}
	return fmt.Sprintf("%.*f±%.*f", decimals, s.Mean, decimals, ci)
}

// Percentile returns the p-quantile (0..1) by linear interpolation on
// the sorted sample. Empty samples return 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the correlation coefficient of two equal-length
// samples; degenerate inputs return 0.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// JainIndex returns Jain's fairness index of a non-negative allocation:
// (Σx)²/(n·Σx²), 1 when perfectly fair, →1/n when one flow takes all.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // all-zero allocation is trivially fair
	}
	return sum * sum / (float64(len(xs)) * sq)
}
