package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ≈2.138 (sample)", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary broken")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{5}) != 0 {
		t.Error("single sample should have no CI")
	}
	// n=5, stddev 1: CI = 2.776·1/√5 ≈ 1.241.
	xs := []float64{4, 4.5, 5, 5.5, 6} // stddev ≈ 0.7906
	ci := CI95(xs)
	want := 2.776 * 0.7906 / math.Sqrt(5)
	if math.Abs(ci-want) > 0.01 {
		t.Errorf("CI95 = %v, want ≈%v", ci, want)
	}
	// Large samples fall back to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	ciBig := CI95(big)
	wantBig := 1.96 * Summarize(big).Stddev / 10
	if math.Abs(ciBig-wantBig) > 1e-9 {
		t.Errorf("large-sample CI = %v, want %v", ciBig, wantBig)
	}
}

func TestMeanCI(t *testing.T) {
	if got := MeanCI([]float64{5}, 1); got != "5.0" {
		t.Errorf("single-sample MeanCI = %q", got)
	}
	got := MeanCI([]float64{4, 6}, 1)
	if !strings.Contains(got, "5.0±") {
		t.Errorf("MeanCI = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series should correlate 0")
	}
	if Pearson(xs, xs[:2]) != 0 {
		t.Error("length mismatch should return 0")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); got != 1 {
		t.Errorf("equal allocation index = %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("single-taker index = %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty index should be 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero allocation should be trivially fair")
	}
}

// Property: CI shrinks as samples grow (same underlying values repeated),
// and Jain's index stays within [1/n, 1].
func TestProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
