package stats

import (
	"encoding/json"
	"math"
)

// Online aggregation for fleet-scale streams: cluster runs feed each
// host's results through these accumulators instead of materializing
// per-host slices, keeping memory independent of fleet size. Both
// structures are deterministic given insertion order, which the runner's
// ordered emission guarantees.

// Moments accumulates count, mean, and variance with Welford's update —
// numerically stable at any stream length, O(1) memory.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		m.min = math.Min(m.min, x)
		m.max = math.Max(m.max, x)
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Merge folds another accumulator's stream into this one, as if every
// observation of o had been Added here (Chan et al.'s pairwise
// combination of count, mean, and M2). Merging is commutative and
// associative up to floating-point rounding, so per-run accumulators
// can be combined in any order — the obs run registry merges per-run
// rate moments into a fleet-wide aggregate this way.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.min = math.Min(m.min, o.min)
	m.max = math.Max(m.max, o.max)
	m.n = n
}

// N returns the observation count.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Stddev returns the sample standard deviation (n-1 denominator, 0 for
// n < 2).
func (m *Moments) Stddev() float64 {
	if m.n < 2 {
		return 0
	}
	return math.Sqrt(m.m2 / float64(m.n-1))
}

// Min and Max return the stream extremes (0 when empty).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return 0
	}
	return m.min
}

func (m *Moments) Max() float64 {
	if m.n == 0 {
		return 0
	}
	return m.max
}

// momentsJSON is the wire form of Moments: the exact accumulator state,
// so a shard worker's partial merges on the coordinator as if the
// observations had been Added there.
type momentsJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the accumulator state for cross-process
// partial aggregation (serve shard workers stream Moments partials back
// to their coordinator).
func (m Moments) MarshalJSON() ([]byte, error) {
	return json.Marshal(momentsJSON{N: m.n, Mean: m.mean, M2: m.m2, Min: m.min, Max: m.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (m *Moments) UnmarshalJSON(data []byte) error {
	var w momentsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*m = Moments{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// Reservoir is a fixed-capacity uniform sample of a stream (Vitter's
// Algorithm R) for approximate quantiles over fleets too large to hold
// in memory. Replacement decisions come from an internal splitmix64
// generator seeded at construction, so the same seed and insertion
// order always select the same sample. With capacity k, the q-quantile
// estimate's error concentrates like O(1/sqrt(k)) in rank space —
// k = 4096 bounds rank error to about 1.6% at 95% confidence,
// independent of stream length.
type Reservoir struct {
	cap    int
	seen   int64
	sample []float64
	rng    uint64
}

// NewReservoir returns a reservoir holding at most capacity values
// (minimum 1), seeded deterministically.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, sample: make([]float64, 0, capacity), rng: seed}
}

// next is splitmix64: a full-period 64-bit generator, the same family
// the simulator's RNG seeds from.
func (r *Reservoir) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < r.cap {
		r.sample = append(r.sample, x)
		return
	}
	// Replace a random slot with probability cap/seen: pick an index
	// uniform in [0, seen) and keep x only if it lands in the reservoir.
	if j := r.next() % uint64(r.seen); j < uint64(r.cap) {
		r.sample[j] = x
	}
}

// Seen returns how many observations were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Quantile returns the q-quantile (0..1) of the sampled values by the
// same linear interpolation as Percentile. Exact while the stream fits
// in the reservoir; approximate beyond.
func (r *Reservoir) Quantile(q float64) float64 {
	return Percentile(r.sample, q)
}
