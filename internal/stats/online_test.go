package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestMomentsMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	want := Summarize(xs)
	if m.N() != int64(want.N) {
		t.Errorf("N = %d, want %d", m.N(), want.N)
	}
	if math.Abs(m.Mean()-want.Mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", m.Mean(), want.Mean)
	}
	if math.Abs(m.Stddev()-want.Stddev) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", m.Stddev(), want.Stddev)
	}
	if m.Min() != want.Min || m.Max() != want.Max {
		t.Errorf("min/max = %v/%v, want %v/%v", m.Min(), m.Max(), want.Min, want.Max)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Stddev() != 0 || m.Min() != 0 || m.Max() != 0 || m.N() != 0 {
		t.Error("empty moments not all zero")
	}
	m.Add(2)
	if m.Stddev() != 0 {
		t.Error("single-sample stddev not 0")
	}
}

func TestReservoirExactWhileSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5 (reservoir must be exact under capacity)", got)
	}
	if got := r.Quantile(1); got != 100 {
		t.Errorf("max = %v", got)
	}
	if r.Seen() != 100 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a := NewReservoir(64, 42)
	b := NewReservoir(64, 42)
	for i := 0; i < 10000; i++ {
		x := float64(i%977) * 0.5
		a.Add(x)
		b.Add(x)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v diverges: %v vs %v (reservoir not deterministic)", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestReservoirApproximatesLargeStream(t *testing.T) {
	r := NewReservoir(4096, 7)
	const n = 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i) / n) // uniform on [0,1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := r.Quantile(q); math.Abs(got-q) > 0.05 {
			t.Errorf("q=%v estimate %v off by more than 0.05", q, got)
		}
	}
	if r.Seen() != n {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirCapacityFloor(t *testing.T) {
	r := NewReservoir(0, 1)
	r.Add(3)
	r.Add(4)
	if got := r.Quantile(0.5); got != 3 && got != 4 {
		t.Errorf("capacity-1 reservoir holds %v", got)
	}
}

// Quantile edge cases around the reservoir's fill boundary: empty,
// single value, under capacity, exactly at capacity, and one past it
// (the first replacement decision).
func TestReservoirQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		r := NewReservoir(8, 1)
		for _, q := range []float64{0, 0.5, 1} {
			if got := r.Quantile(q); got != 0 {
				t.Errorf("empty reservoir Quantile(%v) = %v, want 0", q, got)
			}
		}
		if r.Seen() != 0 {
			t.Errorf("Seen = %d", r.Seen())
		}
	})
	t.Run("single", func(t *testing.T) {
		r := NewReservoir(8, 1)
		r.Add(7)
		for _, q := range []float64{0, 0.5, 1} {
			if got := r.Quantile(q); got != 7 {
				t.Errorf("single-value Quantile(%v) = %v, want 7", q, got)
			}
		}
	})
	t.Run("under-capacity", func(t *testing.T) {
		r := NewReservoir(8, 1)
		for _, x := range []float64{5, 1, 3} {
			r.Add(x)
		}
		if got := r.Quantile(0); got != 1 {
			t.Errorf("min = %v, want 1", got)
		}
		if got := r.Quantile(0.5); got != 3 {
			t.Errorf("median = %v, want 3", got)
		}
		if got := r.Quantile(1); got != 5 {
			t.Errorf("max = %v, want 5", got)
		}
	})
	t.Run("at-capacity", func(t *testing.T) {
		r := NewReservoir(4, 1)
		for i := 1; i <= 4; i++ {
			r.Add(float64(i))
		}
		// Exactly at capacity nothing has been evicted: still exact.
		if got := r.Quantile(0); got != 1 {
			t.Errorf("min = %v, want 1", got)
		}
		if got := r.Quantile(1); got != 4 {
			t.Errorf("max = %v, want 4", got)
		}
		if got := r.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
			t.Errorf("median = %v, want 2.5", got)
		}
	})
	t.Run("capacity-plus-one", func(t *testing.T) {
		r := NewReservoir(4, 1)
		for i := 1; i <= 5; i++ {
			r.Add(float64(i))
		}
		if r.Seen() != 5 {
			t.Errorf("Seen = %d, want 5", r.Seen())
		}
		// The sample still holds exactly cap values, every one from the
		// stream, and quantiles stay within the stream's range.
		if lo, hi := r.Quantile(0), r.Quantile(1); lo < 1 || hi > 5 {
			t.Errorf("quantile range [%v, %v] outside stream range [1, 5]", lo, hi)
		}
	})
}

// Merge must behave as if every observation had been Added to one
// accumulator, regardless of how the stream was split or in which
// order the pieces are combined.
func TestMomentsMergeMatchesSequential(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	for _, split := range []int{0, 1, 5, 8, len(xs)} {
		var a, b Moments
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: Mean = %v, want %v", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Stddev()-whole.Stddev()) > 1e-12 {
			t.Errorf("split %d: Stddev = %v, want %v", split, a.Stddev(), whole.Stddev())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: min/max = %v/%v, want %v/%v", split, a.Min(), a.Max(), whole.Min(), whole.Max())
		}
	}
}

func TestMomentsMergeAssociative(t *testing.T) {
	mk := func(xs ...float64) Moments {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		return m
	}
	a := mk(1, 2, 3)
	b := mk(10, 20)
	c := mk(0.5, 0.25, 0.125, 4)

	// (a+b)+c
	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)
	// a+(b+c)
	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)
	// c+(b+a): commuted as well
	ba := b
	ba.Merge(a)
	abc3 := c
	abc3.Merge(ba)

	for i, m := range []Moments{abc2, abc3} {
		if m.N() != abc1.N() {
			t.Fatalf("variant %d: N = %d, want %d", i, m.N(), abc1.N())
		}
		if math.Abs(m.Mean()-abc1.Mean()) > 1e-12 {
			t.Errorf("variant %d: Mean = %v, want %v", i, m.Mean(), abc1.Mean())
		}
		if math.Abs(m.Stddev()-abc1.Stddev()) > 1e-12 {
			t.Errorf("variant %d: Stddev = %v, want %v", i, m.Stddev(), abc1.Stddev())
		}
	}
}

func TestMomentsMergeEmptySides(t *testing.T) {
	mk := func(xs ...float64) Moments {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		return m
	}
	// empty.Merge(x) adopts x wholesale.
	var empty Moments
	x := mk(2, 4, 6)
	empty.Merge(x)
	if empty.N() != 3 || empty.Mean() != 4 || empty.Min() != 2 || empty.Max() != 6 {
		t.Errorf("empty.Merge(x) = n=%d mean=%v min=%v max=%v", empty.N(), empty.Mean(), empty.Min(), empty.Max())
	}
	// x.Merge(empty) is a no-op.
	y := mk(2, 4, 6)
	var e2 Moments
	y.Merge(e2)
	if y.N() != 3 || y.Mean() != 4 {
		t.Errorf("x.Merge(empty) changed x: n=%d mean=%v", y.N(), y.Mean())
	}
}

// TestMomentsJSONRoundTrip pins the wire form shard workers stream to
// their coordinator: a decoded accumulator must be bit-identical state,
// so merging a round-tripped partial gives the same result as merging
// the original.
func TestMomentsJSONRoundTrip(t *testing.T) {
	var m Moments
	for _, x := range []float64{3.5, -1.25, 0, 7.75, 2.5} {
		m.Add(x)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip changed state: %+v != %+v", back, m)
	}
	// A merged pair built from round-tripped halves is bit-identical to
	// one built from the originals — the property the coordinator's
	// range-ordered partial merge relies on.
	var a, b Moments
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			a.Add(float64(i) * 0.5)
		} else {
			b.Add(float64(i) * 0.25)
		}
	}
	wire := func(m Moments) Moments {
		d, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var out Moments
		if err := json.Unmarshal(d, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	direct, viaWire := a, wire(a)
	direct.Merge(b)
	viaWire.Merge(wire(b))
	if direct != viaWire {
		t.Fatalf("merge over the wire diverged: %+v != %+v", viaWire, direct)
	}
	// Empty accumulators survive the trip too.
	var empty Moments
	if got := wire(empty); got != empty {
		t.Fatalf("empty round trip changed state: %+v", got)
	}
}
