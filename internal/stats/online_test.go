package stats

import (
	"math"
	"testing"
)

func TestMomentsMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	want := Summarize(xs)
	if m.N() != int64(want.N) {
		t.Errorf("N = %d, want %d", m.N(), want.N)
	}
	if math.Abs(m.Mean()-want.Mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", m.Mean(), want.Mean)
	}
	if math.Abs(m.Stddev()-want.Stddev) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", m.Stddev(), want.Stddev)
	}
	if m.Min() != want.Min || m.Max() != want.Max {
		t.Errorf("min/max = %v/%v, want %v/%v", m.Min(), m.Max(), want.Min, want.Max)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Stddev() != 0 || m.Min() != 0 || m.Max() != 0 || m.N() != 0 {
		t.Error("empty moments not all zero")
	}
	m.Add(2)
	if m.Stddev() != 0 {
		t.Error("single-sample stddev not 0")
	}
}

func TestReservoirExactWhileSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5 (reservoir must be exact under capacity)", got)
	}
	if got := r.Quantile(1); got != 100 {
		t.Errorf("max = %v", got)
	}
	if r.Seen() != 100 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a := NewReservoir(64, 42)
	b := NewReservoir(64, 42)
	for i := 0; i < 10000; i++ {
		x := float64(i%977) * 0.5
		a.Add(x)
		b.Add(x)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v diverges: %v vs %v (reservoir not deterministic)", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestReservoirApproximatesLargeStream(t *testing.T) {
	r := NewReservoir(4096, 7)
	const n = 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i) / n) // uniform on [0,1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := r.Quantile(q); math.Abs(got-q) > 0.05 {
			t.Errorf("q=%v estimate %v off by more than 0.05", q, got)
		}
	}
	if r.Seen() != n {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirCapacityFloor(t *testing.T) {
	r := NewReservoir(0, 1)
	r.Add(3)
	r.Add(4)
	if got := r.Quantile(0.5); got != 3 && got != 4 {
		t.Errorf("capacity-1 reservoir holds %v", got)
	}
}
