package cluster

import (
	"strings"
	"testing"

	"hic/internal/sim"
)

func quickFleet(t *testing.T, hosts int) []Point {
	t.Helper()
	cfg := Config{Hosts: hosts, Seed: 1, Warmup: 3 * sim.Millisecond, Measure: 5 * sim.Millisecond}
	points, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Hosts: 0}); err == nil {
		t.Error("zero hosts accepted")
	}
}

func TestFleetReproducesFig1Claims(t *testing.T) {
	const fleet = 32
	points := quickFleet(t, fleet)
	if len(points) != fleet {
		t.Fatalf("points = %d", len(points))
	}
	s := Summarize(points)
	if s.Pearson <= 0 {
		t.Errorf("utilization–drop correlation = %v, want positive (paper claim 1)", s.Pearson)
	}
	if s.DroppingHosts == 0 {
		t.Error("no host dropped; the fleet mix must include congested hosts")
	}
	for _, p := range points {
		if p.Utilization < 0 || p.Utilization > 1.05 {
			t.Errorf("host %d utilization %v out of range", p.Host, p.Utilization)
		}
		if p.DropRate < 0 || p.DropRate > 1 {
			t.Errorf("host %d drop rate %v out of range", p.Host, p.DropRate)
		}
	}
}

func TestMultiWindowFleet(t *testing.T) {
	cfg := Config{Hosts: 6, WindowsPerHost: 3, Seed: 1,
		Warmup: 2 * sim.Millisecond, Measure: 3 * sim.Millisecond}
	points, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("points = %d, want hosts×windows = 18", len(points))
	}
	perHost := map[int]int{}
	for _, p := range points {
		perHost[p.Host]++
		if p.Window < 0 || p.Window >= 3 {
			t.Errorf("window index %d out of range", p.Window)
		}
	}
	for h, n := range perHost {
		if n != 3 {
			t.Errorf("host %d contributed %d windows", h, n)
		}
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := quickFleet(t, 8)
	b := quickFleet(t, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fleet not reproducible at host %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSummarizeMath(t *testing.T) {
	points := []Point{
		{Utilization: 0.1, DropRate: 0},
		{Utilization: 0.5, DropRate: 0.01},
		{Utilization: 0.9, DropRate: 0.03},
	}
	s := Summarize(points)
	if s.Hosts != 3 || s.DroppingHosts != 2 || s.LowUtilDropping != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Pearson < 0.9 {
		t.Errorf("Pearson = %v for a monotone set, want ≈1", s.Pearson)
	}
	if s.MaxDropRate != 0.03 {
		t.Errorf("MaxDropRate = %v", s.MaxDropRate)
	}
	if Summarize(nil).Hosts != 0 {
		t.Error("empty summarize broken")
	}
}

func TestScatterAndCSV(t *testing.T) {
	points := []Point{
		{Host: 1, Utilization: 0.2, DropRate: 0, Threads: 4, Senders: 10},
		{Host: 0, Utilization: 0.9, DropRate: 0.05, Threads: 12, Senders: 40},
	}
	sc := Scatter(points, 40, 10)
	if !strings.Contains(sc, "*") {
		t.Errorf("scatter missing points:\n%s", sc)
	}
	csv := CSV(points)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	// Sorted by host id, window column present.
	if !strings.HasPrefix(lines[1], "0,0,") || !strings.HasPrefix(lines[2], "1,0,") {
		t.Errorf("CSV not sorted by host:\n%s", csv)
	}
}
