package cluster

import (
	"fmt"
	"strings"
	"testing"

	"hic/internal/fidelity"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
)

func quickConfig(hosts int) Config {
	return Config{Hosts: hosts, Seed: 1, Warmup: 3 * sim.Millisecond, Measure: 5 * sim.Millisecond}
}

// fleetHash fingerprints a scatter point-by-point (full float formatting,
// so any bit-level drift shows). It is the exported HashPoints — aliased
// here so the golden pin reads the same as it always has.
func fleetHash(points []Point) string { return HashPoints(points) }

// goldenFleetHash pins the 32-host quick fleet (the same population
// TestFleetReproducesFig1Claims checks). Captured with dedup disabled on
// fresh engines; the test asserts the deduplicated pooled path
// reproduces it exactly. Recompute and repin (with a SimVersion bump)
// only for deliberate simulator or catalog changes.
const goldenFleetHash = "8fd1009b2e60bf3f"

func TestFleetGoldenAndDedupInvisible(t *testing.T) {
	cfg := quickConfig(32)

	cfg.NoDedup = true
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetHash(baseline); got != goldenFleetHash {
		t.Errorf("no-dedup fleet hash = %s, want %s", got, goldenFleetHash)
	}

	cfg.NoDedup = false
	var streamed []Point
	st, err := RunStream(cfg, func(p Point) error {
		streamed = append(streamed, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetHash(streamed); got != goldenFleetHash {
		t.Errorf("deduplicated fleet hash = %s, want %s (dedup must be invisible)", got, goldenFleetHash)
	}
	if st.Collapsed == 0 {
		t.Error("32-host fleet collapsed nothing — catalog discreteness broken")
	}
	if st.Simulated+st.Collapsed != 32 {
		t.Errorf("simulated %d + collapsed %d != 32 hosts", st.Simulated, st.Collapsed)
	}
	if st.Simulated >= 32 {
		t.Errorf("simulated %d of 32 — dedup saved nothing", st.Simulated)
	}
}

func TestRunStreamStatsMatchSummarize(t *testing.T) {
	cfg := quickConfig(16)
	var pts []Point
	st, err := RunStream(cfg, func(p Point) error {
		pts = append(pts, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(pts)
	// Execution accounting is RunStream-only; the scatter statistics must
	// agree exactly (same aggregator, same insertion order).
	want.Simulated, want.Collapsed, want.CacheSkipped = st.Simulated, st.Collapsed, st.CacheSkipped
	if st != want {
		t.Errorf("RunStream stats %+v\n != Summarize %+v", st, want)
	}
}

func TestFleetWithCacheMatchesUncached(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(24)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = store
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fleetHash(cold) != fleetHash(plain) || fleetHash(warm) != fleetHash(plain) {
		t.Error("cached fleet diverges from uncached")
	}
	if store.Stats().Hits == 0 {
		t.Error("warm fleet pass hit nothing")
	}
}

// TestMultiWindowCacheSkipAccounted pins satellite behavior: a cache
// configured on a multi-window fleet is skipped for every host, the skip
// is logged once, and Stats report the count.
func TestMultiWindowCacheSkipAccounted(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	cfg := Config{Hosts: 4, WindowsPerHost: 2, Seed: 1,
		Warmup: 2 * sim.Millisecond, Measure: 3 * sim.Millisecond,
		Cache: store, Log: &log}
	st, err := RunStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheSkipped != 4 {
		t.Errorf("CacheSkipped = %d, want 4", st.CacheSkipped)
	}
	if n := strings.Count(log.String(), "bypass the run cache"); n != 1 {
		t.Errorf("skip notice logged %d times, want once:\n%s", n, log.String())
	}
	if st.Simulated != 4 {
		t.Errorf("Simulated = %d, want 4 (multi-window hosts must not dedup)", st.Simulated)
	}
	if hits, misses := store.Hits(), store.Misses(); hits != 0 || misses != 0 {
		t.Errorf("store touched for multi-window hosts: %d hits, %d misses", hits, misses)
	}
}

func TestHostScenarioRandomAccess(t *testing.T) {
	cfg := quickConfig(64)
	// Deriving host 37 in isolation must equal deriving it after others.
	p1, m1 := HostScenario(cfg, 37)
	for i := 0; i < 64; i++ {
		HostScenario(cfg, i)
	}
	p2, m2 := HostScenario(cfg, 37)
	if p1 != p2 || m1 != m2 {
		t.Error("HostScenario not random-access")
	}
	// Different fleet seeds must change the draw for at least some hosts.
	cfg2 := cfg
	cfg2.Seed = 2
	diff := 0
	for i := 0; i < 64; i++ {
		a, _ := HostScenario(cfg, i)
		b, _ := HostScenario(cfg2, i)
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Error("fleet seed has no effect on host scenarios")
	}
}

// TestFleetDESRouterGolden: a fidelity router in ModeDES (no early stop)
// must be invisible — the golden fleet hash is unchanged with the
// routing layer compiled in and enabled.
func TestFleetDESRouterGolden(t *testing.T) {
	cfg := quickConfig(32)
	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = router
	var points []Point
	st, err := RunStream(cfg, func(p Point) error {
		points = append(points, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetHash(points); got != goldenFleetHash {
		t.Errorf("ModeDES-routed fleet hash = %s, want %s (router must be invisible)", got, goldenFleetHash)
	}
	if st.FluidRouted != 0 || st.EarlyStopped != 0 || st.Audited != 0 {
		t.Errorf("ModeDES routed approximately: %+v", st)
	}
	if st.Simulated+st.Collapsed != 32 {
		t.Errorf("simulated %d + collapsed %d != 32 hosts", st.Simulated, st.Collapsed)
	}
}

// TestFleetAutoRouterAccounting: ModeAuto with audit and early stopping
// on a mid-size fleet — accounting must add up, qualitative Figure 1
// claims must survive, and every audited point must be within tolerance.
func TestFleetAutoRouterAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run is slow")
	}
	// Small fleet and coarse anchor grid: the anchor calibration runs
	// |signatures|×|ants|×|seeds| DES points up front, which must stay
	// affordable under -race (make check runs this suite race-enabled).
	cfg := quickConfig(120)
	cfg.Warmup, cfg.Measure = 2*sim.Millisecond, 4*sim.Millisecond
	router, err := fidelity.New(fidelity.Config{
		Mode:        fidelity.ModeAuto,
		Tol:         0.08,
		AuditRate:   0.25,
		EarlyStop:   true,
		AnchorSeeds: SeedPool(cfg),
		AnchorAnts:  []int{0, 8, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = router
	st, err := RunStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %+v", st)
	if st.Hosts != 120 {
		t.Fatalf("Hosts = %d", st.Hosts)
	}
	// Every host is either executed under some strategy, served from a
	// memoized anchor, or collapsed by dedup; anchor runs are extra
	// simulations beyond the host count.
	if got := st.Simulated - st.AnchorRuns + st.FluidRouted + st.Collapsed; got != 120 {
		t.Errorf("execution accounting does not add up: sim %d - anchors %d + fluid %d + collapsed %d = %d, want 120",
			st.Simulated, st.AnchorRuns, st.FluidRouted, st.Collapsed, got)
	}
	if st.FluidRouted == 0 {
		t.Error("no host fluid-routed — auto routing is vacuous on the fleet mix")
	}
	if st.Pearson <= 0 {
		t.Errorf("utilization–drop correlation = %v, want positive", st.Pearson)
	}
	if st.Audited > 0 && st.AuditMaxErr > router.Tol() {
		t.Errorf("audit max error %.4f exceeds tolerance %.3f (%d/%d over)",
			st.AuditMaxErr, router.Tol(), st.AuditOverTol, st.Audited)
	}
}

// TestFleetGoldenWithObservatory pins the tentpole passivity property at
// fleet scale: attaching the observatory leaves the golden fleet hash
// byte-identical, dedup still collapses hosts (collapsed hosts replay
// the memoized report), and every host lands in the collector.
func TestFleetGoldenWithObservatory(t *testing.T) {
	cfg := quickConfig(32)
	collector := observatory.NewCollector(observatory.DefaultConfig())
	cfg.Observatory = collector
	var points []Point
	st, err := RunStream(cfg, func(p Point) error {
		points = append(points, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetHash(points); got != goldenFleetHash {
		t.Errorf("observed fleet hash = %s, want %s (observatory must be passive)", got, goldenFleetHash)
	}
	if st.Collapsed == 0 {
		t.Error("observatory disabled dedup — memoized reports should keep it on")
	}
	s := collector.Summary()
	if s.Hosts != 32 {
		t.Errorf("collector saw %d hosts, want 32", s.Hosts)
	}
	if s.Episodes == 0 {
		t.Error("32-host fleet produced no congestion episodes (catalog has saturating workloads)")
	}
	if len(s.Cells) == 0 {
		t.Error("no catalog cells aggregated")
	}
}

// TestObservatoryForcesFullDES: with an observatory configured, both the
// fidelity router and the run cache are bypassed (with log notes), and
// the bypass is accounted in CacheSkipped.
func TestObservatoryForcesFullDES(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES})
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	cfg := quickConfig(8)
	cfg.Cache = store
	cfg.Exec = router
	cfg.Log = &log
	cfg.Observatory = observatory.NewCollector(observatory.DefaultConfig())
	st, err := RunStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheSkipped != 8 {
		t.Errorf("CacheSkipped = %d, want 8 (observatory bypasses the cache)", st.CacheSkipped)
	}
	if hits, misses := store.Hits(), store.Misses(); hits != 0 || misses != 0 {
		t.Errorf("store touched under observatory: %d hits, %d misses", hits, misses)
	}
	if !strings.Contains(log.String(), "observatory forces full DES") {
		t.Errorf("router-disabled notice missing:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "bypass the run cache") {
		t.Errorf("cache-bypass notice missing:\n%s", log.String())
	}
	if st.FluidRouted != 0 || st.EarlyStopped != 0 {
		t.Errorf("router still routed under observatory: %+v", st)
	}
}

// TestCellLabelConsistent: the cell label is deterministic, random-access,
// and names the same SKU and antagonist tier HostScenario derives.
func TestCellLabelConsistent(t *testing.T) {
	cfg := quickConfig(64)
	labels := make(map[string]bool)
	for i := 0; i < 64; i++ {
		l1 := CellLabel(cfg, i)
		if l2 := CellLabel(cfg, i); l1 != l2 {
			t.Fatalf("CellLabel(%d) not deterministic: %q vs %q", i, l1, l2)
		}
		p, _ := HostScenario(cfg, i)
		if want := fmt.Sprintf("sku%dt", p.Threads); !strings.Contains(l1, want) {
			t.Errorf("label %q does not name SKU %s", l1, want)
		}
		if want := fmt.Sprintf("/ant%d", p.AntagonistCores); !strings.HasSuffix(l1, want) {
			t.Errorf("label %q does not end with %s", l1, want)
		}
		labels[l1] = true
	}
	if len(labels) < 2 {
		t.Error("64 hosts share one cell label — catalog labeling collapsed")
	}
}

// TestRunRangeConcatenationMatchesFullRun pins the property serve's
// sharding depends on: hosts are random-access, so running the fleet as
// disjoint index ranges (on private pools, like shard workers do) and
// concatenating the ranges in order is byte-identical to one full run —
// including against the committed golden.
func TestRunRangeConcatenationMatchesFullRun(t *testing.T) {
	cfg := quickConfig(32)
	var merged []Point
	var simulated uint64
	for _, r := range [][2]int{{0, 9}, {9, 10}, {10, 24}, {24, 32}} {
		rcfg := cfg
		rcfg.Pool = runner.New(2)
		stats, err := RunRange(rcfg, r[0], r[1], func(p Point) error {
			merged = append(merged, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Hosts != r[1]-r[0] {
			t.Fatalf("range [%d,%d) reported %d hosts", r[0], r[1], stats.Hosts)
		}
		simulated += stats.Simulated
	}
	if got := fleetHash(merged); got != goldenFleetHash {
		t.Errorf("concatenated range hash = %s, want %s", got, goldenFleetHash)
	}
	if simulated == 0 {
		t.Error("no simulations accounted across ranges")
	}
	// Range Stats fold the same aggregates a full run would when merged
	// over the same ordered points.
	full := Summarize(merged)
	whole, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w := Summarize(whole); w != full {
		t.Errorf("summaries diverge:\nranges: %+v\nfull:   %+v", full, w)
	}
}

// TestRunRangeValidation: out-of-fleet ranges are errors, not silent
// truncation — a coordinator bug must not drop hosts.
func TestRunRangeValidation(t *testing.T) {
	cfg := quickConfig(8)
	for _, r := range [][2]int{{-1, 4}, {4, 4}, {5, 4}, {0, 9}} {
		if _, err := RunRange(cfg, r[0], r[1], nil); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[1])
		}
	}
}

// TestFleetAutoRouterRerunDeterministic pins the serving invariant
// behind hicserve's resident routers: rerunning an identical fleet
// against the SAME router (calibration now fully resident) must
// reproduce the first pass byte-for-byte. Routing decisions therefore
// cannot depend on what happened to be calibrated when a point
// arrived — the regression this guards is anchor-coincident points
// fluid-routing on a cold pass but anchor-reusing on a warm one.
func TestFleetAutoRouterRerunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibrated fleet twice")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Hosts: 32, Seed: 1, Warmup: 2 * sim.Millisecond, Measure: 3 * sim.Millisecond, Cache: store}
	router, err := fidelity.New(fidelity.Config{
		Mode: fidelity.ModeAuto, Tol: 0.08, EarlyStop: true,
		Cache: store, AnchorSeeds: SeedPool(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = router
	run := func() ([]Point, Stats) {
		var pts []Point
		st, err := RunStream(cfg, func(p Point) error {
			pts = append(pts, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts, st
	}
	cold, cs := run()
	warm, ws := run()
	if fleetHash(cold) != fleetHash(warm) {
		for i := range cold {
			if cold[i] != warm[i] {
				t.Errorf("host %d diverges on rerun: %+v vs %+v", cold[i].Host, cold[i], warm[i])
			}
		}
	}
	if cs.AnchorRuns == 0 {
		t.Error("cold pass calibrated nothing — test is vacuous")
	}
	if ws.AnchorRuns != 0 || ws.Simulated != 0 {
		t.Errorf("warm pass re-executed: %d anchors, %d simulations (want 0, 0)", ws.AnchorRuns, ws.Simulated)
	}
}
