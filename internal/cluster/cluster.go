// Package cluster regenerates Figure 1: a fleet-wide scatter of host
// access-link utilization against host drop rate. The paper's figure
// comes from a 24-hour production trace binned at 10 minutes; the
// synthetic equivalent runs many independent simulated hosts whose
// workload mix (senders, receiver threads, Rx provisioning, memory
// antagonism) is drawn per-host from fleet-like distributions, each
// measured over its own window with its own seed.
//
// The fleet distributions are discrete: each host is drawn from a
// catalog of machine SKUs × workload classes × antagonist tiers × a
// small seed pool, weighted to match the production mix the paper
// describes. Discreteness is what makes fleet scale tractable — a
// production fleet has far more hosts than distinct configurations, so
// byte-identical scenarios repeat, and because every simulation is
// deterministic per Params, repeats are collapsed to one run by
// in-process singleflight (and, optionally, the content-addressed run
// cache). A 100k-host fleet costs on the order of a thousand
// simulations.
//
// Hosts are generated random-access (host i's parameters depend only on
// Config.Seed and i, never on other hosts), so streaming runs need no
// up-front materialization and any host can be re-derived in isolation.
//
// The two qualitative claims the figure supports are what Summary
// checks: drop rate is positively correlated with utilization, and
// drops occur even at low utilization (the memory-bus root cause).
package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hic/internal/core"
	"hic/internal/fidelity"
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
	"hic/internal/stats"
)

// Config controls the fleet sweep.
type Config struct {
	// Hosts is the number of simulated hosts.
	Hosts int
	// WindowsPerHost is how many consecutive measurement bins each host
	// contributes (the paper bins its 24 h trace at 10 minutes; ≥2
	// windows add the temporal variation a single average hides).
	// 0 means 1.
	WindowsPerHost int
	// Seed drives the fleet-level randomization.
	Seed uint64
	// Warmup and Measure are the per-host windows (0 ⇒ 8 ms + 12 ms;
	// shorter than single-figure runs because the fleet is large).
	Warmup, Measure sim.Duration
	// Cache, when non-nil, memoizes single-window hosts through the
	// content-addressed run cache. Hosts with WindowsPerHost > 1 are
	// NOT cached: their later bins continue one testbed's state, which
	// a per-Params cache cannot address, so every multi-window host
	// simulates in full. The number of hosts that bypassed the cache
	// this way is reported in Stats.CacheSkipped and logged once per
	// run on Log.
	Cache *runcache.Store
	// Exec, when non-nil, routes each single-window host through an
	// execution strategy (see core.Executor; internal/fidelity.Router
	// adds the calibrated fluid fast path and early stopping). Hosts
	// with WindowsPerHost > 1 always run full DES — their later bins
	// continue one testbed's state, which neither the fluid solver nor
	// an early-stopped window can reproduce. When Exec is a
	// *fidelity.Router, Stats reports its routing counters.
	Exec core.Executor
	// NoDedup disables the in-process singleflight that collapses
	// byte-identical hosts into one simulation. Dedup never changes any
	// output (the simulator is deterministic per Params); disabling it
	// exists for benchmarking the non-deduplicated cost and for
	// determinism tests.
	NoDedup bool
	// Log, when non-nil, receives one-line diagnostics (the
	// multi-window cache-skip notice). nil is silent.
	Log io.Writer
	// Progress, when non-nil, is advanced by one unit per completed
	// host (runner.NewProgress prints rate and ETA on stderr).
	Progress *runner.Progress
	// Sink, when non-nil, receives structured run/point events and the
	// /progress run registration; nil falls back to the process-global
	// obs sink (nil there too = fully disabled, zero overhead).
	Sink obs.Sink
	// Pool, when non-nil, executes the run on a private worker pool
	// instead of the shared process-wide one. Serve shard workers bound
	// their own concurrency this way, so N workers on one machine split
	// the cores instead of oversubscribing them.
	Pool *runner.Pool
	// Observatory, when non-nil, attaches the sim-time congestion
	// observatory to every host and streams per-host incident reports
	// into the collector (Record is called in host order from the emit
	// phase). Observatory runs always execute full DES: episodes are a
	// per-run byproduct neither the fluid solver nor the run cache
	// produces, so Exec and Cache are ignored (with a Log note).
	// Singleflight dedup stays on — collapsed hosts replay the
	// memoized report, which is exact because the simulation is
	// deterministic per Params.
	Observatory *observatory.Collector
}

// DefaultConfig returns a 200-host fleet.
func DefaultConfig() Config {
	return Config{Hosts: 200, Seed: 1}
}

func (cfg Config) windows() (warm, meas sim.Duration) {
	warm, meas = cfg.Warmup, cfg.Measure
	if warm == 0 {
		warm = 8 * sim.Millisecond
	}
	if meas == 0 {
		meas = 12 * sim.Millisecond
	}
	return warm, meas
}

// Point is one host's measurement over one time bin.
type Point struct {
	Host            int
	Window          int
	Utilization     float64 // access-link utilization in [0,1]
	DropRate        float64 // drop fraction in [0,1]
	Threads         int
	Senders         int
	AntagonistCores int
}

// The archetype catalog. Weights in each dimension sum to 1; the
// catalog's cross product (5 SKUs × 10 workloads × 8 antagonist tiers ×
// 3 seeds = 1200 combinations) bounds the number of distinct
// simulations a fleet of any size can require.

// sku is a machine shape: receiver threads and Rx provisioning.
type sku struct {
	threads  int
	regionMB int
}

var skuWeights = []float64{0.15, 0.25, 0.30, 0.15, 0.15}
var skus = []sku{
	{4, 4},
	{8, 8},
	{12, 12},
	{14, 12},
	{16, 16},
}

// workload is an application class: protocol, sender fan-in, and offered
// load shape. The production cluster runs both the Linux kernel stack
// (TCP, loss-based — drops are its signal) and SNAP with Swift; the
// three load shapes are the populations Figure 1 needs: bursty apps
// (low binned average utilization, yet burst onsets still overflow the
// NIC — the paper's low-utilization drops), saturating hosts (like the
// paper's testbed workload), and application-limited hosts.
type workload struct {
	cc          core.CC
	senders     int
	offeredGbps float64
	burstDuty   float64
	burstPeriod sim.Duration
	// maxAnt caps the antagonist tier for this class (0 = no cap) — the
	// colocation-policy analogue: latency-sensitive bursty kernel-stack
	// services are not scheduled next to the heaviest batch work.
	maxAnt int
}

var workloadWeights = []float64{0.10, 0.08, 0.12, 0.10, 0.12, 0.08, 0.12, 0.10, 0.10, 0.08}
var workloads = []workload{
	{cc: core.CCSwift, senders: 40},
	{cc: core.CCSwift, senders: 16},
	{cc: core.CCSwift, senders: 24, offeredGbps: 25},
	{cc: core.CCSwift, senders: 32, offeredGbps: 60},
	{cc: core.CCSwift, senders: 40, burstDuty: 0.20, burstPeriod: 2 * sim.Millisecond},
	{cc: core.CCSwift, senders: 24, burstDuty: 0.50, burstPeriod: sim.Millisecond},
	{cc: core.CCDCTCP, senders: 40},
	{cc: core.CCDCTCP, senders: 16, offeredGbps: 40},
	{cc: core.CCDCTCP, senders: 24, burstDuty: 0.35, burstPeriod: 2 * sim.Millisecond, maxAnt: 8},
	{cc: core.CCSwift, senders: 40, offeredGbps: 90},
}

// Antagonist tiers: most hosts run some co-located memory-hungry work; a
// long tail runs a lot of it (the low-utilization-drops population).
var antagonistWeights = []float64{0.22, 0.18, 0.15, 0.13, 0.12, 0.08, 0.07, 0.05}
var antagonistTiers = []int{0, 2, 4, 6, 8, 10, 12, 15}

// Each archetype cell is replicated under a small pool of simulation
// seeds, adding per-host measurement noise without defeating dedup.
var seedWeights = []float64{0.5, 0.3, 0.2}

// pickIdx draws an index from a discrete weighted distribution.
func pickIdx(r *sim.RNG, weights []float64) int {
	x := r.Float64()
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// mix64 is the splitmix64 finalizer — full avalanche, so consecutive
// inputs yield decorrelated outputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hostDraw is host i's catalog cell: the weighted index draws shared
// by HostScenario and CellLabel. The RNG consumption order (sku,
// workload, antagonist, seed) is pinned by the fleet golden hash.
type hostDraw struct {
	sku      int
	workload int
	antCores int
	seedK    int
}

func drawHost(cfg Config, i int) hostDraw {
	r := sim.NewRNG(mix64(cfg.Seed) + uint64(i)*0x9e3779b97f4a7c15)
	d := hostDraw{
		sku:      pickIdx(r, skuWeights),
		workload: pickIdx(r, workloadWeights),
	}
	d.antCores = antagonistTiers[pickIdx(r, antagonistWeights)]
	if w := workloads[d.workload]; w.maxAnt > 0 && d.antCores > w.maxAnt {
		d.antCores = w.maxAnt
	}
	d.seedK = pickIdx(r, seedWeights)
	return d
}

// HostScenario derives host i's scenario and point metadata from the
// fleet config alone — random access, no shared RNG stream — so callers
// can enumerate, stream, or re-derive any host independently.
func HostScenario(cfg Config, i int) (core.Params, Point) {
	warm, meas := cfg.windows()
	d := drawHost(cfg, i)
	s := skus[d.sku]
	w := workloads[d.workload]

	p := core.DefaultParams(s.threads)
	p.Warmup, p.Measure = warm, meas
	p.RxRegionBytes = uint64(s.regionMB) << 20
	p.CC = w.cc
	p.Senders = w.senders
	p.OfferedGbps = w.offeredGbps
	p.BurstDuty = w.burstDuty
	p.BurstPeriod = w.burstPeriod
	p.AntagonistCores = d.antCores
	p.Seed = SeedPool(cfg)[d.seedK]

	return p, Point{
		Host:            i,
		Threads:         p.Threads,
		Senders:         p.Senders,
		AntagonistCores: p.AntagonistCores,
	}
}

// CellLabel names host i's catalog cell — SKU × workload × antagonist
// tier, e.g. "sku12t-12mb/swift-s40-b20/ant8" — the key the
// observatory's per-cell cause mix aggregates under. Seed replicas of
// a cell share one label, so a fleet of any size rolls up into at most
// 400 cells.
func CellLabel(cfg Config, i int) string {
	d := drawHost(cfg, i)
	s := skus[d.sku]
	w := workloads[d.workload]
	l := fmt.Sprintf("sku%dt-%dmb/%s-s%d", s.threads, s.regionMB, w.cc, w.senders)
	if w.offeredGbps > 0 {
		l += fmt.Sprintf("-o%g", w.offeredGbps)
	}
	if w.burstDuty > 0 {
		l += fmt.Sprintf("-b%.0f", w.burstDuty*100)
	}
	return l + fmt.Sprintf("/ant%d", d.antCores)
}

// SeedPool returns the fleet's simulation seed pool in descending
// weight order. Fidelity routing should calibrate its anchors under
// these seeds (fidelity.Config.AnchorSeeds) so anchor runs coincide
// with — and are shared by — real fleet points.
func SeedPool(cfg Config) []uint64 {
	pool := make([]uint64, len(seedWeights))
	for k := range pool {
		pool[k] = mix64(cfg.Seed ^ (0xc0ffee + uint64(k)))
	}
	return pool
}

// Run simulates the fleet on the shared worker pool and returns every
// point, in host order (windows within a host in window order). It is
// RunStream with an in-memory sink; fleets large enough that the point
// slice matters should stream instead.
func Run(cfg Config) ([]Point, error) {
	windows := cfg.WindowsPerHost
	if windows < 1 {
		windows = 1
	}
	points := make([]Point, 0, cfg.Hosts*windows)
	_, err := RunStream(cfg, func(p Point) error {
		points = append(points, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// hostOut is one worker's product: the host's scatter points plus its
// observatory report (nil when the observatory is off).
type hostOut struct {
	pts []Point
	rep *observatory.HostReport
}

// RunStream simulates the fleet, streaming each point to emit in host
// order while aggregating the fleet statistics online — memory stays
// proportional to the worker count, not the host count, which is what
// makes 100k-host fleets runnable. emit may be nil (statistics only); a
// non-nil emit error aborts the run. The returned Stats also report how
// many simulations actually executed versus how many hosts were served
// by dedup or the cache.
func RunStream(cfg Config, emit func(Point) error) (Stats, error) {
	return RunRange(cfg, 0, cfg.Hosts, emit)
}

// rosterScanCap bounds the SignatureReps host scan: the catalog has
// ~50 distinct signatures (5 SKUs × 10 workloads), so distinctness
// saturates within a few hundred draws and scanning further buys
// nothing. Param generation only — no simulation.
const rosterScanCap = 65536

// SignatureReps returns one representative host index per distinct
// fidelity signature in the fleet, in first-occurrence order — the
// work-list the serve coordinator shards into prefetch leases and the
// roster calibration transfer clusters over.
func SignatureReps(cfg Config) []int {
	n := cfg.Hosts
	if n > rosterScanCap {
		n = rosterScanCap
	}
	seen := make(map[string]bool)
	var reps []int
	for h := 0; h < n; h++ {
		p, _ := HostScenario(cfg, h)
		if k := fidelity.SignatureKey(p); !seen[k] {
			seen[k] = true
			reps = append(reps, h)
		}
	}
	return reps
}

// InstallRoster installs the fleet's signature roster on a
// transfer-enabled router so cross-signature calibration transfer has a
// shard-order-independent hub/spoke assignment to work from. No-op (and
// cheap to call per range) otherwise; re-installing the same fleet's
// roster is detected and skipped inside SetRoster.
func InstallRoster(cfg Config, r *fidelity.Router) {
	if r == nil || !r.TransferEnabled() {
		return
	}
	idx := SignatureReps(cfg)
	ps := make([]core.Params, len(idx))
	for i, h := range idx {
		ps[i], _ = HostScenario(cfg, h)
	}
	r.SetRoster(ps)
}

// RouterDelta converts a router counter delta (after minus before) into
// the execution-accounting fields of Stats. RunRange and serve's
// prefetch leases share it so router work folds identically into fleet
// accounting wherever it ran. Max-style fields (audit maxima) carry the
// after-side value: counters only grow, so the lifetime max is correct
// for any window that includes the excursion.
func RouterDelta(before, after fidelity.Counters) Stats {
	var s Stats
	s.Simulated = (after.DESRouted - before.DESRouted) + (after.AnchorRuns - before.AnchorRuns)
	s.FluidRouted = after.FluidRouted - before.FluidRouted
	s.EarlyStopped = after.EarlyStopped - before.EarlyStopped
	s.AnchorRuns = after.AnchorRuns - before.AnchorRuns
	s.Audited = after.Audited - before.Audited
	s.AuditOverTol = after.AuditOverTol - before.AuditOverTol
	s.AuditMaxErr = after.AuditMaxErr
	s.AnchorTransferred = after.AnchorTransferred - before.AnchorTransferred
	s.AnchorRefined = after.AnchorRefined - before.AnchorRefined
	s.KneeProbes = after.KneeProbes - before.KneeProbes
	s.KneeBypassed = after.KneeBypassed - before.KneeBypassed
	// Points served from a coinciding anchor's memoized result were
	// not re-simulated — account them with the dedup collapses.
	s.Collapsed = after.AnchorReused - before.AnchorReused
	s.AnchorLoaded = after.AnchorLoaded - before.AnchorLoaded
	s.AnchorPersisted = after.AnchorPersisted - before.AnchorPersisted
	s.WarmStarted = after.WarmStarted - before.WarmStarted
	s.WarmCheckpoints = after.WarmCheckpoints - before.WarmCheckpoints
	s.WarmAudited = after.WarmAudited - before.WarmAudited
	s.WarmAuditOverTol = after.WarmAuditOverTol - before.WarmAuditOverTol
	s.WarmAuditMaxErr = after.WarmAuditMaxErr
	return s
}

// RunRange is RunStream restricted to hosts [lo, hi) of the fleet: the
// same catalog draws, execution strategies, and ordered emission, over
// a contiguous index range. Because hosts are generated random-access,
// a range run is byte-identical to the corresponding slice of a full
// run — which is what lets serve's coordinator dispense ranges to shard
// workers and still merge a fleet whose aggregates match the
// single-process golden exactly. The returned Stats cover only this
// range.
func RunRange(cfg Config, lo, hi int, emit func(Point) error) (Stats, error) {
	if cfg.Hosts <= 0 {
		return Stats{}, fmt.Errorf("cluster: Hosts must be positive")
	}
	if lo < 0 || hi > cfg.Hosts || lo >= hi {
		return Stats{}, fmt.Errorf("cluster: range [%d, %d) outside fleet [0, %d)", lo, hi, cfg.Hosts)
	}
	n := hi - lo
	windows := cfg.WindowsPerHost
	if windows < 1 {
		windows = 1
	}

	// Observatory runs force full DES: episodes are a per-run byproduct
	// neither the fluid fast path nor the run cache produces.
	obsv := cfg.Observatory
	exec := cfg.Exec
	if obsv != nil && exec != nil {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log,
				"cluster: observatory forces full DES; fidelity routing disabled for this run\n")
		}
		exec = nil
	}

	// Dedup layer. With a store, the store's own singleflight already
	// collapses concurrent duplicates and memoizes completed ones; the
	// batch-local flight (memoizing) covers store-less runs. Multi-window
	// hosts never dedup: their later bins continue one testbed's state,
	// which no per-Params key can address.
	var flight *runcache.Flight
	cache := cfg.Cache
	if obsv != nil && cache != nil {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log,
				"cluster: %d observatory hosts bypass the run cache (episode records are not cached)\n",
				n)
		}
		cache = nil
	}
	if windows > 1 {
		if cache != nil {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log,
					"cluster: %d multi-window hosts bypass the run cache (later bins continue one testbed's state)\n",
					n)
			}
			cache = nil
		}
	} else if !cfg.NoDedup && cache == nil {
		flight = runcache.NewFlight(true)
	}
	var cacheBefore runcache.Stats
	if cache != nil {
		cacheBefore = cache.Stats()
	}
	var router *fidelity.Router
	var routerBefore fidelity.Counters
	if exec != nil {
		if r, ok := exec.(*fidelity.Router); ok {
			router = r
			routerBefore = r.Counters()
			InstallRoster(cfg, r)
		}
	}

	sink := cfg.Sink
	if sink == nil {
		sink = obs.Default()
	}
	var orun *obs.Run // nil-safe: all methods no-op without a sink
	if sink != nil {
		orun = sink.StartRun("fleet", int64(n))
		defer orun.Finish()
		obsv.SetSink(sink, orun.Label())
	}

	pool := cfg.Pool
	if pool == nil {
		pool = runner.Shared()
	}
	var simulated atomic.Uint64
	agg := newAggregator()
	err := runner.MapOrdered(pool, n,
		func(i int, a *runner.Arena) (hostOut, error) {
			host := lo + i
			defer cfg.Progress.Add(1)
			defer orun.Advance(1)
			if sink != nil {
				sink.Emit(obs.Event{Kind: obs.KindPointStart, Run: orun.Label(), Point: host})
				t0 := time.Now()
				defer func() {
					sink.Emit(obs.Event{
						Kind:  obs.KindPointFinish,
						Run:   orun.Label(),
						Point: host,
						DurMS: float64(time.Since(t0).Nanoseconds()) / 1e6,
					})
				}()
			}
			p, meta := HostScenario(cfg, host)
			if windows == 1 {
				var r core.Results
				var rep *observatory.HostReport
				var err error
				switch {
				case exec != nil:
					// The executor decides strategy and cache salt per
					// host; its own counters account the executions.
					r, err = core.RunOnVia(exec, p, cache, flight, a)
				case obsv != nil:
					// Memoize the report under the scenario key so a
					// dedup-collapsed host replays it: flight.Do returns
					// only after the winning compute finished, so the
					// memo entry is always present by then.
					key := p.CacheKey()
					compute := func() (core.Results, error) {
						simulated.Add(1)
						res, hr, rerr := core.RunObservedOn(p, obsv.SamplerConfig(), a)
						if rerr == nil {
							obsv.Memo(key, hr)
						}
						return res, rerr
					}
					if flight != nil {
						r, err = flight.Do(key, compute)
					} else {
						r, err = compute()
					}
					if err == nil {
						rep = obsv.Lookup(key)
					}
				default:
					compute := func() (core.Results, error) {
						simulated.Add(1)
						return core.RunOn(p, a)
					}
					switch {
					case cache != nil:
						r, err = cache.GetOrCompute(p.CacheKey(), core.SimVersion, p.Canonical(), compute)
					case flight != nil:
						r, err = flight.Do(p.CacheKey(), compute)
					default:
						r, err = compute()
					}
				}
				if err != nil {
					return hostOut{}, err
				}
				meta.Utilization = r.LinkUtilization
				meta.DropRate = r.DropRatePct / 100
				return hostOut{pts: []Point{meta}, rep: rep}, nil
			}
			// Multi-window: one testbed, consecutive bins. The monitor
			// spans every bin, so episodes can cross bin boundaries.
			simulated.Add(1)
			tb, err := p.BuildOn(a)
			if err != nil {
				return hostOut{}, err
			}
			var mon *observatory.Monitor
			if obsv != nil {
				mon = observatory.Attach(tb, obsv.SamplerConfig())
			}
			pts := make([]Point, 0, windows)
			for w := 0; w < windows; w++ {
				warm := p.Warmup
				if w > 0 {
					warm = 0 // back-to-back bins after the first
				}
				r := tb.Run(warm, p.Measure)
				pt := meta
				pt.Window = w
				pt.Utilization = r.LinkUtilization
				pt.DropRate = r.DropRatePct / 100
				pts = append(pts, pt)
			}
			return hostOut{pts: pts, rep: mon.Report()}, nil
		},
		func(i int, out hostOut) error {
			for _, pt := range out.pts {
				agg.add(pt)
				if emit != nil {
					if err := emit(pt); err != nil {
						return err
					}
				}
			}
			if obsv != nil {
				if err := obsv.Record(lo+i, CellLabel(cfg, lo+i), out.rep); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return Stats{}, err
	}

	s := agg.stats()
	s.Simulated = simulated.Load()
	if router != nil {
		d := RouterDelta(routerBefore, router.Counters())
		s.Simulated += d.Simulated
		s.Collapsed += d.Collapsed
		s.FluidRouted, s.EarlyStopped, s.AnchorRuns = d.FluidRouted, d.EarlyStopped, d.AnchorRuns
		s.Audited, s.AuditOverTol, s.AuditMaxErr = d.Audited, d.AuditOverTol, d.AuditMaxErr
		s.AnchorTransferred, s.AnchorRefined = d.AnchorTransferred, d.AnchorRefined
		s.KneeProbes, s.KneeBypassed = d.KneeProbes, d.KneeBypassed
		s.AnchorLoaded, s.AnchorPersisted = d.AnchorLoaded, d.AnchorPersisted
		s.WarmStarted, s.WarmCheckpoints = d.WarmStarted, d.WarmCheckpoints
		s.WarmAudited, s.WarmAuditOverTol, s.WarmAuditMaxErr = d.WarmAudited, d.WarmAuditOverTol, d.WarmAuditMaxErr
	}
	if flight != nil {
		s.Collapsed += flight.Collapses()
	} else if cache != nil {
		after := cache.Stats()
		s.Collapsed += (after.Hits - cacheBefore.Hits) + (after.Collapses - cacheBefore.Collapses)
	}
	if cfg.Cache != nil && (windows > 1 || obsv != nil) {
		s.CacheSkipped = n
	}
	return s, nil
}

// Stats summarizes the scatter against the paper's two claims, plus the
// execution accounting a fleet run reports.
type Stats struct {
	// Hosts counts scatter points (hosts × windows), matching the
	// figure's population.
	Hosts int
	// Pearson is the utilization–drop-rate correlation coefficient.
	Pearson float64
	// DroppingHosts counts points with any drops.
	DroppingHosts int
	// LowUtilDropping counts points dropping below 60% utilization —
	// the paper's "drops happen even when utilization is low".
	LowUtilDropping int
	MeanUtilization float64
	MaxDropRate     float64

	// Distribution summaries, computed online (quantiles from a
	// fixed-size deterministic reservoir; exact up to 4096 points,
	// ±~1.6% rank error beyond).
	MeanDropRate   float64
	UtilizationP50 float64
	UtilizationP99 float64
	DropRateP50    float64
	DropRateP99    float64

	// Simulated counts simulations actually executed (including fidelity
	// anchor and audit runs); Collapsed counts hosts served without
	// simulating (singleflight dedup or run-cache hits). CacheSkipped
	// counts hosts that bypassed a configured cache because
	// WindowsPerHost > 1. Zero for plain Summarize calls.
	Simulated    uint64
	Collapsed    uint64
	CacheSkipped int

	// Fidelity routing accounting, non-zero only when Config.Exec is a
	// *fidelity.Router: FluidRouted hosts were served by the calibrated
	// fluid solver, EarlyStopped DES runs terminated at steady state,
	// AnchorRuns calibration anchors were simulated, and Audited
	// fluid-routed hosts were shadow-run under DES (AuditMaxErr is the
	// largest observed fluid-vs-DES error, AuditOverTol how many audits
	// exceeded the router's tolerance).
	FluidRouted  uint64
	EarlyStopped uint64
	AnchorRuns   uint64
	Audited      uint64
	AuditOverTol uint64
	AuditMaxErr  float64

	// Cold-path acceleration accounting (see fidelity.Counters):
	// AnchorTransferred anchor tiers were borrowed from a calibrated
	// neighbor signature instead of simulated, AnchorRefined were re-run
	// by a borrowing signature because the transfer residual was too
	// high, KneeProbes bisection probes located regime boundaries, and
	// KneeBypassed knee-band hosts were fluid-routed because the located
	// knee cleared them.
	AnchorTransferred uint64
	AnchorRefined     uint64
	KneeProbes        uint64
	KneeBypassed      uint64

	// Cross-run warm-start accounting (non-zero only with -warm):
	// AnchorLoaded anchors/noise tiers were served from the persistent
	// warm store, AnchorPersisted were computed here and written back,
	// WarmStarted DES hosts ran from a persisted checkpoint,
	// WarmCheckpoints converged snapshots were captured, and WarmAudited
	// warm-startable hosts were cold-re-run to measure warm-start error
	// (WarmAuditMaxErr the largest observed, WarmAuditOverTol how many
	// exceeded the router's tolerance).
	AnchorLoaded     uint64
	AnchorPersisted  uint64
	WarmStarted      uint64
	WarmCheckpoints  uint64
	WarmAudited      uint64
	WarmAuditOverTol uint64
	WarmAuditMaxErr  float64
}

// CounterSample is one named execution counter of a Stats, spelled as
// a Prometheus series suffix ("simulated_total") so federating layers
// (the serve coordinator's per-worker hic_worker_* fold) can consume
// the enumeration without knowing the field list.
type CounterSample struct {
	Name  string
	Value float64
}

// CounterSamples enumerates the summable execution-accounting counters
// in a fixed order. Scatter statistics and the audit maxima are
// deliberately absent: only values where sum-over-shards equals the
// merged query's value belong here (the same invariant sumStats in
// internal/serve preserves), so a consumer folding per-worker samples
// can assert they add up to the merged totals.
func (s Stats) CounterSamples() []CounterSample {
	return []CounterSample{
		{"hosts_done_total", float64(s.Hosts)},
		{"simulated_total", float64(s.Simulated)},
		{"collapsed_total", float64(s.Collapsed)},
		{"cache_skipped_total", float64(s.CacheSkipped)},
		{"fluid_routed_total", float64(s.FluidRouted)},
		{"early_stopped_total", float64(s.EarlyStopped)},
		{"anchor_runs_total", float64(s.AnchorRuns)},
		{"audited_total", float64(s.Audited)},
		{"audit_over_tol_total", float64(s.AuditOverTol)},
		{"anchor_transferred_total", float64(s.AnchorTransferred)},
		{"anchor_refined_total", float64(s.AnchorRefined)},
		{"knee_probes_total", float64(s.KneeProbes)},
		{"knee_bypassed_total", float64(s.KneeBypassed)},
		{"anchor_loaded_total", float64(s.AnchorLoaded)},
		{"anchor_persisted_total", float64(s.AnchorPersisted)},
		{"warm_started_total", float64(s.WarmStarted)},
		{"warm_checkpoints_total", float64(s.WarmCheckpoints)},
		{"warm_audited_total", float64(s.WarmAudited)},
		{"warm_audit_over_tol_total", float64(s.WarmAuditOverTol)},
	}
}

// aggregator folds points into Stats one at a time — the online path
// RunStream uses, and the buffered path Summarize wraps around it.
type aggregator struct {
	n                     int
	su, sd, suu, sdd, sud float64
	util, drop            stats.Moments
	utilQ, dropQ          *stats.Reservoir
	dropping, lowUtil     int
	maxDrop               float64
}

// reservoirCap bounds quantile-sketch memory; see stats.Reservoir for
// the resulting rank-error bound.
const reservoirCap = 4096

func newAggregator() *aggregator {
	return &aggregator{
		utilQ: stats.NewReservoir(reservoirCap, 0x5eed0001),
		dropQ: stats.NewReservoir(reservoirCap, 0x5eed0002),
	}
}

func (a *aggregator) add(p Point) {
	a.n++
	a.su += p.Utilization
	a.sd += p.DropRate
	a.suu += p.Utilization * p.Utilization
	a.sdd += p.DropRate * p.DropRate
	a.sud += p.Utilization * p.DropRate
	a.util.Add(p.Utilization)
	a.drop.Add(p.DropRate)
	a.utilQ.Add(p.Utilization)
	a.dropQ.Add(p.DropRate)
	if p.DropRate > 0 {
		a.dropping++
		if p.Utilization < 0.6 {
			a.lowUtil++
		}
	}
	if p.DropRate > a.maxDrop {
		a.maxDrop = p.DropRate
	}
}

func (a *aggregator) stats() Stats {
	s := Stats{
		Hosts:           a.n,
		DroppingHosts:   a.dropping,
		LowUtilDropping: a.lowUtil,
		MaxDropRate:     a.maxDrop,
	}
	if a.n == 0 {
		return s
	}
	n := float64(a.n)
	s.MeanUtilization = a.util.Mean()
	s.MeanDropRate = a.drop.Mean()
	s.UtilizationP50 = a.utilQ.Quantile(0.5)
	s.UtilizationP99 = a.utilQ.Quantile(0.99)
	s.DropRateP50 = a.dropQ.Quantile(0.5)
	s.DropRateP99 = a.dropQ.Quantile(0.99)
	cov := a.sud/n - (a.su/n)*(a.sd/n)
	vu := a.suu/n - (a.su/n)*(a.su/n)
	vd := a.sdd/n - (a.sd/n)*(a.sd/n)
	if vu > 0 && vd > 0 {
		s.Pearson = cov / math.Sqrt(vu*vd)
	}
	return s
}

// Summarize computes Stats for a scatter.
func Summarize(points []Point) Stats {
	a := newAggregator()
	for _, p := range points {
		a.add(p)
	}
	return a.stats()
}

// Scatter renders the normalized scatter as ASCII (utilization on x,
// drop rate normalized by the fleet maximum on y — matching the paper's
// normalized axis).
func Scatter(points []Point, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	maxDrop := 0.0
	for _, p := range points {
		if p.DropRate > maxDrop {
			maxDrop = p.DropRate
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int(p.Utilization * float64(width-1))
		y := 0.0
		if maxDrop > 0 {
			y = p.DropRate / maxDrop
		}
		row := height - 1 - int(y*float64(height-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		if row >= 0 && row < height {
			grid[row][x] = '*'
		}
	}
	var b strings.Builder
	b.WriteString("normalized host drop rate vs access-link utilization\n")
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	b.WriteString(" 0" + strings.Repeat(" ", width-10) + "util -> 1\n")
	return b.String()
}

// CSV renders the scatter points for external plotting.
func CSV(points []Point) string {
	var b strings.Builder
	b.WriteString(CSVHeader())
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Host != sorted[j].Host {
			return sorted[i].Host < sorted[j].Host
		}
		return sorted[i].Window < sorted[j].Window
	})
	for _, p := range sorted {
		b.WriteString(CSVRow(p))
	}
	return b.String()
}

// CSVHeader and CSVRow expose the CSV encoding piecewise so streaming
// callers (hiccluster at fleet scale) can write points as they arrive
// instead of buffering the scatter.
func CSVHeader() string {
	return "host,window,utilization,drop_rate,threads,senders,antagonist_cores\n"
}

func CSVRow(p Point) string {
	return fmt.Sprintf("%d,%d,%.4f,%.6f,%d,%d,%d\n",
		p.Host, p.Window, p.Utilization, p.DropRate, p.Threads, p.Senders, p.AntagonistCores)
}
