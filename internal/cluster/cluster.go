// Package cluster regenerates Figure 1: a fleet-wide scatter of host
// access-link utilization against host drop rate. The paper's figure
// comes from a 24-hour production trace binned at 10 minutes; the
// synthetic equivalent runs many independent simulated hosts whose
// workload mix (senders, receiver threads, Rx provisioning, memory
// antagonism) is drawn per-host from fleet-like distributions, each
// measured over its own window with its own seed.
//
// The two qualitative claims the figure supports are what Summary
// checks: drop rate is positively correlated with utilization, and
// drops occur even at low utilization (the memory-bus root cause).
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"hic/internal/core"
	"hic/internal/runcache"
	"hic/internal/sim"
)

// Config controls the fleet sweep.
type Config struct {
	// Hosts is the number of simulated hosts.
	Hosts int
	// WindowsPerHost is how many consecutive measurement bins each host
	// contributes (the paper bins its 24 h trace at 10 minutes; ≥2
	// windows add the temporal variation a single average hides).
	// 0 means 1.
	WindowsPerHost int
	// Seed drives the fleet-level randomization.
	Seed uint64
	// Warmup and Measure are the per-host windows (0 ⇒ 8 ms + 12 ms;
	// shorter than single-figure runs because the fleet is large).
	Warmup, Measure sim.Duration
	// Cache, when non-nil, memoizes single-window hosts through the
	// content-addressed run cache. Hosts with WindowsPerHost > 1 always
	// simulate: their later bins continue one testbed's state, which a
	// per-Params cache cannot address.
	Cache *runcache.Store
}

// DefaultConfig returns a 200-host fleet.
func DefaultConfig() Config {
	return Config{Hosts: 200, Seed: 1}
}

// Point is one host's measurement over one time bin.
type Point struct {
	Host            int
	Window          int
	Utilization     float64 // access-link utilization in [0,1]
	DropRate        float64 // drop fraction in [0,1]
	Threads         int
	Senders         int
	AntagonistCores int
}

// Run simulates the fleet. Hosts run concurrently via core.RunMany.
func Run(cfg Config) ([]Point, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("cluster: Hosts must be positive")
	}
	warm, meas := cfg.Warmup, cfg.Measure
	if warm == 0 {
		warm = 8 * sim.Millisecond
	}
	if meas == 0 {
		meas = 12 * sim.Millisecond
	}
	rng := sim.NewRNG(cfg.Seed)
	ps := make([]core.Params, cfg.Hosts)
	meta := make([]Point, cfg.Hosts)
	for i := range ps {
		p := core.DefaultParams(2 + rng.Intn(15)) // 2..16 threads
		// The production cluster runs both the Linux kernel stack (TCP,
		// loss-based — drops are its signal) and SNAP with Swift.
		if rng.Float64() < 0.4 {
			p.CC = core.CCDCTCP // no switch ECN configured ⇒ loss-based
		}
		p.Seed = rng.Uint64()
		p.Warmup, p.Measure = warm, meas
		// Offered load varies with both the number of active senders and
		// each host's application demand.
		p.Senders = 4 + rng.Intn(37) // 4..40
		// Three workload populations:
		//   - bursty apps: saturating bursts at a low duty cycle; their
		//     binned average utilization is low, yet burst onsets still
		//     overflow the NIC buffer (the paper's low-utilization drops);
		//   - saturating hosts (like the paper's testbed workload);
		//   - application-limited hosts offered 15–100 Gbps.
		switch workload := rng.Float64(); {
		case workload < 0.30:
			p.BurstDuty = 0.15 + 0.5*rng.Float64()
			p.BurstPeriod = sim.Duration(1+rng.Intn(3)) * sim.Millisecond
		case workload < 0.55:
			// Saturating: leave OfferedGbps unlimited.
		default:
			p.OfferedGbps = 15 + 85*rng.Float64()
		}
		// Rx provisioning varies per host.
		p.RxRegionBytes = uint64(4+rng.Intn(13)) << 20 // 4..16 MB
		// Most hosts run some co-located memory-hungry work; a long
		// tail runs a lot of it (the low-utilization-drops population).
		switch {
		case rng.Float64() < 0.5:
			p.AntagonistCores = rng.Intn(4)
		case rng.Float64() < 0.8:
			p.AntagonistCores = 4 + rng.Intn(6)
		default:
			p.AntagonistCores = 10 + rng.Intn(6)
		}
		ps[i] = p
		meta[i] = Point{
			Host:            i,
			Threads:         p.Threads,
			Senders:         p.Senders,
			AntagonistCores: p.AntagonistCores,
		}
	}
	windows := cfg.WindowsPerHost
	if windows < 1 {
		windows = 1
	}

	// Each host runs on its own goroutine (each simulation is single-
	// threaded and deterministic), contributing one point per window.
	points := make([][]Point, cfg.Hosts)
	errs := make([]error, cfg.Hosts)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range ps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if windows == 1 && cfg.Cache != nil {
				r, err := core.RunCached(ps[i], cfg.Cache)
				if err != nil {
					errs[i] = err
					return
				}
				pt := meta[i]
				pt.Utilization = r.LinkUtilization
				pt.DropRate = r.DropRatePct / 100
				points[i] = append(points[i], pt)
				return
			}
			tb, err := ps[i].Build()
			if err != nil {
				errs[i] = err
				return
			}
			for w := 0; w < windows; w++ {
				warm := ps[i].Warmup
				if w > 0 {
					warm = 0 // back-to-back bins after the first
				}
				r := tb.Run(warm, ps[i].Measure)
				pt := meta[i]
				pt.Window = w
				pt.Utilization = r.LinkUtilization
				pt.DropRate = r.DropRatePct / 100
				points[i] = append(points[i], pt)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var flat []Point
	for _, hostPoints := range points {
		flat = append(flat, hostPoints...)
	}
	return flat, nil
}

// Stats summarizes the scatter against the paper's two claims.
type Stats struct {
	Hosts int
	// Pearson is the utilization–drop-rate correlation coefficient.
	Pearson float64
	// DroppingHosts counts hosts with any drops.
	DroppingHosts int
	// LowUtilDropping counts hosts dropping below 60% utilization —
	// the paper's "drops happen even when utilization is low".
	LowUtilDropping int
	MeanUtilization float64
	MaxDropRate     float64
}

// Summarize computes Stats for a scatter.
func Summarize(points []Point) Stats {
	s := Stats{Hosts: len(points)}
	if len(points) == 0 {
		return s
	}
	var su, sd, suu, sdd, sud float64
	for _, p := range points {
		su += p.Utilization
		sd += p.DropRate
		suu += p.Utilization * p.Utilization
		sdd += p.DropRate * p.DropRate
		sud += p.Utilization * p.DropRate
		if p.DropRate > 0 {
			s.DroppingHosts++
			if p.Utilization < 0.6 {
				s.LowUtilDropping++
			}
		}
		if p.DropRate > s.MaxDropRate {
			s.MaxDropRate = p.DropRate
		}
	}
	n := float64(len(points))
	s.MeanUtilization = su / n
	cov := sud/n - (su/n)*(sd/n)
	vu := suu/n - (su/n)*(su/n)
	vd := sdd/n - (sd/n)*(sd/n)
	if vu > 0 && vd > 0 {
		s.Pearson = cov / math.Sqrt(vu*vd)
	}
	return s
}

// Scatter renders the normalized scatter as ASCII (utilization on x,
// drop rate normalized by the fleet maximum on y — matching the paper's
// normalized axis).
func Scatter(points []Point, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	maxDrop := 0.0
	for _, p := range points {
		if p.DropRate > maxDrop {
			maxDrop = p.DropRate
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int(p.Utilization * float64(width-1))
		y := 0.0
		if maxDrop > 0 {
			y = p.DropRate / maxDrop
		}
		row := height - 1 - int(y*float64(height-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		if row >= 0 && row < height {
			grid[row][x] = '*'
		}
	}
	var b strings.Builder
	b.WriteString("normalized host drop rate vs access-link utilization\n")
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	b.WriteString(" 0" + strings.Repeat(" ", width-10) + "util -> 1\n")
	return b.String()
}

// CSV renders the scatter points for external plotting.
func CSV(points []Point) string {
	var b strings.Builder
	b.WriteString("host,window,utilization,drop_rate,threads,senders,antagonist_cores\n")
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Host != sorted[j].Host {
			return sorted[i].Host < sorted[j].Host
		}
		return sorted[i].Window < sorted[j].Window
	})
	for _, p := range sorted {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.6f,%d,%d,%d\n",
			p.Host, p.Window, p.Utilization, p.DropRate, p.Threads, p.Senders, p.AntagonistCores)
	}
	return b.String()
}
