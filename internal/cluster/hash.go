package cluster

import (
	"crypto/sha256"
	"fmt"
	"hash"
)

// PointHasher fingerprints a scatter stream point by point, in emission
// order, with full float formatting so any bit-level drift shows. It is
// the scheme behind the committed fleet golden hash: a sharded serve
// run whose coordinator folds worker ranges in order produces exactly
// the hash a single-process RunStream produces, which is how the query
// service proves its merged aggregates byte-match the golden.
type PointHasher struct {
	h hash.Hash
	n int
}

// NewPointHasher returns an empty hasher.
func NewPointHasher() *PointHasher {
	return &PointHasher{h: sha256.New()}
}

// Add folds one point in. Order matters — callers must add points in
// host order (windows within a host in window order), the order
// RunStream emits.
func (ph *PointHasher) Add(p Point) {
	fmt.Fprintf(ph.h, "%+v\n", p)
	ph.n++
}

// Count returns how many points were folded in.
func (ph *PointHasher) Count() int { return ph.n }

// Sum returns the 16-hex-digit fingerprint of the stream so far.
func (ph *PointHasher) Sum() string {
	return fmt.Sprintf("%x", ph.h.Sum(nil)[:8])
}

// HashPoints fingerprints a buffered scatter (see PointHasher).
func HashPoints(points []Point) string {
	ph := NewPointHasher()
	for _, p := range points {
		ph.Add(p)
	}
	return ph.Sum()
}
