// Package cpu models the receiver cores that run the network stack: each
// Rx queue is pinned to one core (as in the paper's setup, one receiver
// thread per dedicated core in the NIC-local NUMA node), packets queue
// per core and are processed at a calibrated per-packet + per-byte cost —
// one core sustains ≈11.5 Gbps of application throughput, giving the
// paper's linear CPU-bottlenecked region up to 8 cores ≈ 92 Gbps.
//
// Processing a packet also copies payload from stack buffers to
// application buffers; the resulting memory-read traffic is registered
// with the memory controller as fluid CPU demand (the ~3.3 GB/s read
// bandwidth the paper measures at full throughput).
package cpu

import (
	"fmt"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
	"hic/internal/telemetry"
)

// Config sizes the receive-processing pool.
type Config struct {
	// Cores is the number of receiver threads/cores.
	Cores int
	// PerPacketCost is the fixed software cost per packet.
	PerPacketCost sim.Duration
	// PerByteCostNs is the per-payload-byte software cost in nanoseconds.
	PerByteCostNs float64
	// CopyReadFraction is how much of the payload is re-read from memory
	// when copying to application buffers (cache hits cover the rest).
	CopyReadFraction float64
	// CopyWriteFraction is payload written back to memory by the copy.
	CopyWriteFraction float64
	// DemandEpoch is the period at which copy traffic is folded into the
	// memory controller's fluid demand.
	DemandEpoch sim.Duration
}

// DefaultConfig returns the calibrated per-core cost: with a 4 KB MTU one
// core sustains ≈11.5 Gbps of application throughput.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:             cores,
		PerPacketCost:     400 * sim.Nanosecond,
		PerByteCostNs:     0.6,
		CopyReadFraction:  0.28,
		CopyWriteFraction: 0,
		DemandEpoch:       20 * sim.Microsecond,
	}
}

func (c Config) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cpu: Cores must be positive")
	}
	if c.PerPacketCost < 0 || c.PerByteCostNs < 0 {
		return fmt.Errorf("cpu: negative processing cost")
	}
	if c.CopyReadFraction < 0 || c.CopyWriteFraction < 0 {
		return fmt.Errorf("cpu: negative copy fraction")
	}
	if c.DemandEpoch <= 0 {
		return fmt.Errorf("cpu: DemandEpoch must be positive")
	}
	return nil
}

// Pool is the set of receiver cores.
type Pool struct {
	engine *sim.Engine
	memory *mem.Controller
	cfg    Config
	done   func(*pkt.Packet)

	queues [][]*pkt.Packet
	busy   []bool
	active int // cores currently allocated to packet processing

	epochPayload uint64 // payload bytes processed in the current epoch

	processed *metrics.Counter
	payload   *metrics.Counter
	queueGa   *metrics.Gauge
	procDelay *metrics.Histogram // ns, delivery → processing complete
}

// New constructs the pool. done is invoked when a packet has been fully
// processed (the application-visible delivery point).
func New(engine *sim.Engine, reg *metrics.Registry, memory *mem.Controller,
	cfg Config, done func(*pkt.Packet)) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if done == nil {
		return nil, fmt.Errorf("cpu: done callback is required")
	}
	p := &Pool{
		engine:    engine,
		memory:    memory,
		cfg:       cfg,
		done:      done,
		queues:    make([][]*pkt.Packet, cfg.Cores),
		busy:      make([]bool, cfg.Cores),
		active:    cfg.Cores,
		processed: reg.Counter("cpu.packets"),
		payload:   reg.Counter("cpu.payload.bytes"),
		queueGa:   reg.Gauge("cpu.queue.packets"),
		procDelay: reg.Histogram("cpu.processing.delay.ns"),
	}
	engine.Every(cfg.DemandEpoch, p.updateDemand)
	return p, nil
}

// Cores returns the number of cores in the pool.
func (p *Pool) Cores() int { return p.cfg.Cores }

// ActiveCores returns how many cores are currently allocated.
func (p *Pool) ActiveCores() int { return p.active }

// SetActiveCores reallocates processing cores at run time — the dynamic
// core-scaling remedy for host *software* congestion that §4 credits
// state-of-the-art stacks with (and contrasts against interconnect
// congestion, which more cores make worse). Queued packets on
// deactivated cores migrate to the remaining ones.
func (p *Pool) SetActiveCores(n int) {
	if n < 1 || n > p.cfg.Cores {
		panic(fmt.Sprintf("cpu: SetActiveCores(%d) outside [1,%d]", n, p.cfg.Cores))
	}
	old := p.active
	p.active = n
	if n >= old {
		// Newly activated cores pick work up on the next Enqueue; no
		// migration needed.
		return
	}
	for core := n; core < old; core++ {
		for _, packet := range p.queues[core] {
			target := packet.Queue % p.active
			p.queues[target] = append(p.queues[target], packet)
			p.run(target)
		}
		p.queues[core] = nil
	}
}

// PerCoreRate returns the application throughput one core sustains for
// the given payload size — the slope of the CPU-bottlenecked region.
func (p *Pool) PerCoreRate(payloadBytes int) sim.BitsPerSecond {
	cost := p.packetCost(payloadBytes)
	if cost <= 0 {
		return sim.Gbps(1e6)
	}
	return sim.BitsPerSecond(float64(payloadBytes*8) / cost.Seconds())
}

// packetCost is the software service time for one packet.
func (p *Pool) packetCost(payloadBytes int) sim.Duration {
	return p.cfg.PerPacketCost + sim.Duration(p.cfg.PerByteCostNs*float64(payloadBytes))
}

// Enqueue hands a DMA-completed packet to its core's run queue.
func (p *Pool) Enqueue(packet *pkt.Packet) {
	core := packet.Queue % p.active
	p.queues[core] = append(p.queues[core], packet)
	p.queueGa.Add(1)
	p.run(core)
}

func (p *Pool) run(core int) {
	if p.busy[core] || len(p.queues[core]) == 0 {
		return
	}
	p.busy[core] = true
	packet := p.queues[core][0]
	p.queues[core] = p.queues[core][1:]
	p.queueGa.Add(-1)
	cost := p.packetCost(packet.PayloadBytes)
	start := p.engine.Now()
	if packet.Span != nil {
		packet.Span.Advance(telemetry.StageCPUQueue, start,
			telemetry.Attr{Key: "core", Value: float64(core)},
			telemetry.Attr{Key: "queued_behind", Value: float64(len(p.queues[core]))})
	}
	p.engine.After(cost, func() {
		p.busy[core] = false
		p.processed.Inc()
		p.payload.Add(uint64(packet.PayloadBytes))
		p.epochPayload += uint64(packet.PayloadBytes)
		p.procDelay.Observe(float64(p.engine.Now().Sub(start)))
		// Host delay as the congestion control sees it: NIC arrival to
		// application-visible delivery, including this core's queue.
		packet.Delivered = p.engine.Now()
		packet.EchoHostDelay = packet.Delivered.Sub(packet.NICArrival)
		if packet.Span != nil {
			packet.Span.Advance(telemetry.StageCPUProcess, packet.Delivered)
			packet.Span.Finish(packet.Delivered)
		}
		p.done(packet)
		p.run(core)
	})
}

// updateDemand folds the copy traffic of the last epoch into the memory
// controller's fluid CPU demand.
func (p *Pool) updateDemand() {
	rate := float64(p.epochPayload) / p.cfg.DemandEpoch.Seconds()
	p.epochPayload = 0
	if p.memory != nil {
		p.memory.SetCPUDemand("cpu.copy.read", rate*p.cfg.CopyReadFraction)
		p.memory.SetCPUDemand("cpu.copy.write", rate*p.cfg.CopyWriteFraction)
	}
}

// QueuedPackets returns the total packets waiting across all cores.
func (p *Pool) QueuedPackets() int {
	total := 0
	for _, q := range p.queues {
		total += len(q)
	}
	return total
}

// Processed returns the number of packets fully processed.
func (p *Pool) Processed() uint64 { return p.processed.Value() }

// PayloadBytes returns the total payload processed.
func (p *Pool) PayloadBytes() uint64 { return p.payload.Value() }
