package cpu

import (
	"testing"

	"hic/internal/mem"
	"hic/internal/metrics"
	"hic/internal/pkt"
	"hic/internal/sim"
)

func newPool(t *testing.T, cfg Config) (*sim.Engine, *mem.Controller, *Pool, *[]*pkt.Packet) {
	t.Helper()
	e := sim.NewEngine(1)
	mc, err := mem.New(e, metrics.NewRegistry(), mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var done []*pkt.Packet
	p, err := New(e, metrics.NewRegistry(), mc, cfg, func(pk *pkt.Packet) { done = append(done, pk) })
	if err != nil {
		t.Fatal(err)
	}
	return e, mc, p, &done
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.PerPacketCost = -1 },
		func(c *Config) { c.PerByteCostNs = -1 },
		func(c *Config) { c.CopyReadFraction = -1 },
		func(c *Config) { c.DemandEpoch = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(4)
		mutate(&cfg)
		e := sim.NewEngine(1)
		if _, err := New(e, metrics.NewRegistry(), nil, cfg, func(*pkt.Packet) {}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPerCoreRateCalibration(t *testing.T) {
	_, _, p, _ := newPool(t, DefaultConfig(1))
	// The paper's linear region: one core ≈ 11.5 Gbps at 4 KB MTU.
	rate := p.PerCoreRate(4096).Gbps()
	if rate < 11 || rate > 12 {
		t.Errorf("per-core rate = %.2f Gbps, want ≈11.5", rate)
	}
}

func TestProcessingStampsHostDelay(t *testing.T) {
	e, _, p, done := newPool(t, DefaultConfig(2))
	packet := pkt.NewData(1, 0, 0, 0, 4096)
	packet.NICArrival = e.Now()
	p.Enqueue(packet)
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*done) != 1 {
		t.Fatalf("processed %d packets, want 1", len(*done))
	}
	if packet.EchoHostDelay <= 0 {
		t.Error("host delay not stamped after processing")
	}
	if packet.Delivered == 0 {
		t.Error("delivery time not stamped")
	}
}

func TestCoresProcessInParallel(t *testing.T) {
	e, _, p, done := newPool(t, DefaultConfig(4))
	for i := 0; i < 4; i++ {
		pk := pkt.NewData(uint64(i), uint32(i), i, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
	}
	e.Run(e.Now().Add(sim.Millisecond))
	// All four packets on distinct cores finish at the same time.
	first := (*done)[0].Delivered
	for _, pk := range *done {
		if pk.Delivered != first {
			t.Errorf("packet on its own core finished at %v, want %v", pk.Delivered, first)
		}
	}
}

func TestSameQueueSerializes(t *testing.T) {
	e, _, p, done := newPool(t, DefaultConfig(4))
	for i := 0; i < 3; i++ {
		pk := pkt.NewData(uint64(i), 0, 0, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
	}
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*done) != 3 {
		t.Fatalf("processed %d/3", len(*done))
	}
	for i := 1; i < 3; i++ {
		if (*done)[i].Delivered <= (*done)[i-1].Delivered {
			t.Error("same-core packets did not serialize")
		}
	}
	if p.QueuedPackets() != 0 {
		t.Errorf("QueuedPackets = %d after drain", p.QueuedPackets())
	}
}

func TestThroughputMatchesCoreCount(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		cfg := DefaultConfig(cores)
		e, _, p, _ := newPool(t, cfg)
		// Saturate: 4 packets per core queued at all times.
		injected := 0
		var top func()
		top = func() {
			for p.QueuedPackets() < cores*4 {
				pk := pkt.NewData(uint64(injected), uint32(injected), injected%cores, 0, 4096)
				pk.NICArrival = e.Now()
				p.Enqueue(pk)
				injected++
			}
			e.After(2*sim.Microsecond, top)
		}
		top()
		horizon := 2 * sim.Millisecond
		e.Run(e.Now().Add(horizon))
		gbps := float64(p.PayloadBytes()*8) / horizon.Seconds() / 1e9
		want := float64(cores) * p.PerCoreRate(4096).Gbps()
		if gbps < 0.95*want || gbps > 1.05*want {
			t.Errorf("cores=%d: throughput %.1f Gbps, want ≈%.1f", cores, gbps, want)
		}
	}
}

func TestCopyDemandRegistered(t *testing.T) {
	e, mc, p, _ := newPool(t, DefaultConfig(2))
	for i := 0; i < 200; i++ {
		pk := pkt.NewData(uint64(i), uint32(i%2), i%2, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
	}
	e.Run(e.Now().Add(300 * sim.Microsecond))
	if mc.CPUOffered() == 0 {
		t.Error("copy traffic not registered as memory demand")
	}
	// Rough magnitude: 2 cores × 11.5 Gbps × 0.28 read fraction ≈ 0.8 GB/s.
	if got := mc.CPUOffered(); got > 3e9 {
		t.Errorf("copy demand %v implausibly high", got)
	}
}

func BenchmarkEnqueueProcess(b *testing.B) {
	e := sim.NewEngine(1)
	p, err := New(e, metrics.NewRegistry(), nil, DefaultConfig(8), func(*pkt.Packet) {})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk := pkt.NewData(uint64(i), uint32(i%8), i%8, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
		if i%1024 == 0 {
			e.Run(e.Now().Add(10 * sim.Millisecond))
		}
	}
	// Drain the queued work with a bounded horizon: the pool's demand
	// ticker never stops, so Drain() would loop forever.
	e.Run(e.Now().Add(100 * sim.Millisecond))
}

func TestSetActiveCores(t *testing.T) {
	e, _, p, done := newPool(t, DefaultConfig(8))
	if p.ActiveCores() != 8 {
		t.Fatalf("initial active = %d", p.ActiveCores())
	}
	p.SetActiveCores(2)
	for i := 0; i < 16; i++ {
		pk := pkt.NewData(uint64(i), uint32(i), i%8, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
	}
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*done) != 16 {
		t.Fatalf("processed %d/16 with 2 active cores", len(*done))
	}
	// Scale back up: still drains.
	p.SetActiveCores(8)
	for i := 16; i < 32; i++ {
		pk := pkt.NewData(uint64(i), uint32(i), i%8, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
	}
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*done) != 32 {
		t.Fatalf("processed %d/32 after scaling up", len(*done))
	}
}

func TestSetActiveCoresMigratesQueuedWork(t *testing.T) {
	e, _, p, done := newPool(t, DefaultConfig(8))
	// Queue work on high cores, then deactivate them before it runs.
	for i := 0; i < 8; i++ {
		pk := pkt.NewData(uint64(i), uint32(i), i, 0, 4096)
		pk.NICArrival = e.Now()
		p.Enqueue(pk)
		pk2 := pkt.NewData(uint64(100+i), uint32(i), i, 0, 4096)
		pk2.NICArrival = e.Now()
		p.Enqueue(pk2)
	}
	p.SetActiveCores(1)
	e.Run(e.Now().Add(sim.Millisecond))
	if len(*done) != 16 {
		t.Fatalf("stranded packets after core deactivation: %d/16", len(*done))
	}
	if p.QueuedPackets() != 0 {
		t.Errorf("QueuedPackets = %d after drain", p.QueuedPackets())
	}
}

func TestSetActiveCoresValidation(t *testing.T) {
	_, _, p, _ := newPool(t, DefaultConfig(4))
	for _, n := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetActiveCores(%d) did not panic", n)
				}
			}()
			p.SetActiveCores(n)
		}()
	}
}
