package core

import (
	"fmt"
	"strings"

	"hic/internal/runcache"
	"hic/internal/runner"
)

// SimVersion salts every cache key. Bump it whenever a change anywhere
// in the simulator can alter the Results produced for a given Params —
// engine semantics, component timing, congestion-control behavior, or
// the Results schema itself. Old cache entries then simply stop being
// addressed; no explicit invalidation pass is needed.
const SimVersion = "hic-sim-2"

// ParamsFieldCount pins the number of fields in Params. A test asserts
// it by reflection: adding a Params field without extending Canonical
// below (and bumping this constant) would silently alias distinct
// scenarios to one cache key.
const ParamsFieldCount = 31

// Canonical renders every Params field into a stable, unambiguous
// string. Field order is fixed, values are printed with %v (shortest
// round-trip form for floats), and entries are ';'-separated with
// explicit names so no two distinct Params can collide textually.
func (p Params) Canonical() string {
	var b strings.Builder
	f := func(name string, v any) {
		fmt.Fprintf(&b, "%s=%v;", name, v)
	}
	f("Seed", p.Seed)
	f("Threads", p.Threads)
	f("Senders", p.Senders)
	f("RxRegionBytes", p.RxRegionBytes)
	f("IOMMU", p.IOMMU)
	f("Hugepages", p.Hugepages)
	f("AntagonistCores", p.AntagonistCores)
	f("CC", string(p.CC))
	f("FixedCwnd", p.FixedCwnd)
	f("HostTarget", int64(p.HostTarget))
	f("NICBufferBytes", p.NICBufferBytes)
	f("DeviceTLBEntries", p.DeviceTLBEntries)
	f("StrictIOMMU", p.StrictIOMMU)
	f("LinkLatencyScale", p.LinkLatencyScale)
	f("MemoryIOReservedShare", p.MemoryIOReservedShare)
	f("SubRTTHostECN", p.SubRTTHostECN)
	f("FabricECNThresholdBytes", p.FabricECNThresholdBytes)
	f("CPUCores", p.CPUCores)
	f("InitialActiveCores", p.InitialActiveCores)
	f("DynamicCoreScaling", p.DynamicCoreScaling)
	f("AntagonistRemoteNUMA", p.AntagonistRemoteNUMA)
	f("CopyReadFraction", p.CopyReadFraction)
	f("PerQueueNICBuffers", p.PerQueueNICBuffers)
	f("VictimConnGbps", p.VictimConnGbps)
	f("SenderHostModel", p.SenderHostModel)
	f("SenderAntagonistCores", p.SenderAntagonistCores)
	f("OfferedGbps", p.OfferedGbps)
	f("BurstDuty", p.BurstDuty)
	f("BurstPeriod", int64(p.BurstPeriod))
	f("Warmup", int64(p.Warmup))
	f("Measure", int64(p.Measure))
	return b.String()
}

// CacheKey content-addresses the scenario: sha256 over the simulator
// version salt and the canonical parameter encoding.
func (p Params) CacheKey() string {
	return runcache.Key(SimVersion, p.Canonical())
}

// RunCached executes one scenario through the cache: a stored result
// for the same Params and SimVersion is returned as-is (bit-identical
// to a cold run, because the simulator is deterministic per seed);
// otherwise the scenario runs and the result is stored. A nil cache
// degrades to Run.
func RunCached(p Params, cache *runcache.Store) (Results, error) {
	return runCachedOn(p, cache, nil, nil)
}

// runCachedOn is the single execution funnel for the pool workers: it
// normalizes the windows (so the key reflects what actually runs),
// consults the store and/or a batch-local singleflight, and computes
// misses on the worker's arena. cache, flight, and arena may each be
// nil; with all three nil it degrades to Run. When a store is present
// its own singleflight collapses concurrent duplicates, so the
// batch-local flight is only used store-less.
func runCachedOn(p Params, cache *runcache.Store, flight *runcache.Flight, a *runner.Arena) (Results, error) {
	if cache == nil && flight == nil {
		return RunOn(p, a)
	}
	p.normalizeWindows()
	canonical := p.Canonical()
	key := runcache.Key(SimVersion, canonical)
	compute := func() (Results, error) { return RunOn(p, a) }
	if cache != nil {
		return cache.GetOrCompute(key, SimVersion, canonical, compute)
	}
	return flight.Do(key, compute)
}

// RunManyCached is RunMany with a result cache: hits skip simulation
// entirely, misses run and populate the store. Order and error
// semantics match RunMany; a nil cache degrades to RunMany.
func RunManyCached(ps []Params, cache *runcache.Store) ([]Results, error) {
	return runMany(ps, cache)
}

// RunReplicatedCached is RunReplicated with a result cache.
func RunReplicatedCached(p Params, n int, cache *runcache.Store) ([]Results, error) {
	if n < 1 {
		n = 1
	}
	ps := make([]Params, n)
	for i := range ps {
		ps[i] = p
		ps[i].Seed = p.Seed + uint64(i)*0x9e3779b97f4a7c15
	}
	return runMany(ps, cache)
}
