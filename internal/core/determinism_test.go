package core_test

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"hic/internal/core"
	"hic/internal/pkt"
	"hic/internal/runcache"
	"hic/internal/sim"
)

// goldenHashes pin the full Results of two paper scenarios at two seeds.
// They were captured from the pre-rewrite engine (container/heap queue,
// no free lists, no cache), so they prove the hot-path rewrite is
// bit-identical to the seed implementation — not merely self-consistent.
// If a deliberate behavior change invalidates them, recompute with
// resultHash below and bump core.SimVersion in the same commit.
var goldenHashes = map[string]string{
	"fig3/seed=1": "66ca27843ac22e66",
	"fig3/seed=7": "02d11dba6298b1a9",
	"fig6/seed=1": "09e292bc6fda3532",
	"fig6/seed=7": "2fec689fbfcbfaf1",
}

// goldenParams reconstructs the pinned scenarios: a fig3-style point
// (8 receiver cores, no antagonist) and a fig6-style point (12 cores,
// 8 antagonist cores), both with short windows so the test stays fast.
func goldenParams(name string, seed uint64) core.Params {
	var p core.Params
	switch name {
	case "fig3":
		p = core.DefaultParams(8)
	case "fig6":
		p = core.DefaultParams(12)
		p.AntagonistCores = 8
	default:
		panic("unknown golden scenario " + name)
	}
	p.Seed = seed
	p.Warmup, p.Measure = 4*sim.Millisecond, 6*sim.Millisecond
	return p
}

func resultHash(r core.Results) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%+v", r)))
	return fmt.Sprintf("%x", h[:8])
}

func runGoldens(t *testing.T, label string) {
	t.Helper()
	for _, seed := range []uint64{1, 7} {
		for _, name := range []string{"fig3", "fig6"} {
			r, err := core.Run(goldenParams(name, seed))
			if err != nil {
				t.Fatalf("%s: %s seed=%d: %v", label, name, seed, err)
			}
			key := fmt.Sprintf("%s/seed=%d", name, seed)
			if got := resultHash(r); got != goldenHashes[key] {
				t.Errorf("%s: %s results hash = %s, want %s (bit-level determinism broken)",
					label, key, got, goldenHashes[key])
			}
		}
	}
}

// TestGoldenDeterminism verifies the simulator still produces the exact
// pre-rewrite Results with the default configuration (event free list
// and packet pool enabled).
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	runGoldens(t, "pooled")
}

// TestGoldenDeterminismWithoutFreeLists re-runs the goldens with both
// free lists disabled: recycling events and packets must be invisible
// to the simulation. A divergence here means a recycled object leaked
// state between lifetimes.
func TestGoldenDeterminismWithoutFreeLists(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	prevEv := sim.SetEventPooling(false)
	prevPkt := pkt.SetPooling(false)
	defer func() {
		sim.SetEventPooling(prevEv)
		pkt.SetPooling(prevPkt)
	}()
	runGoldens(t, "unpooled")
}

// TestGoldenDeterminismWithPoison re-runs the goldens with released
// packets poisoned: any component touching a packet after its Release
// would see scrambled fields and fail the hash (or trip an invariant).
func TestGoldenDeterminismWithPoison(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	prev := pkt.SetPoison(true)
	defer pkt.SetPoison(prev)
	runGoldens(t, "poisoned")
}

// TestCacheHitMatchesColdRun proves a run-cache hit is byte-identical
// to a cold simulation: the first pass simulates and stores, the second
// pass must replay the same Results (hash-compared), and a no-cache run
// must match both.
func TestCacheHitMatchesColdRun(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams("fig6", 1)
	cold, err := core.RunCached(p, store)
	if err != nil {
		t.Fatal(err)
	}
	if store.Misses() != 1 || store.Hits() != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/1", store.Hits(), store.Misses())
	}
	warm, err := core.RunCached(p, store)
	if err != nil {
		t.Fatal(err)
	}
	if store.Hits() != 1 {
		t.Fatalf("second run did not hit the cache: hits=%d misses=%d", store.Hits(), store.Misses())
	}
	if ch, wh := resultHash(cold), resultHash(warm); ch != wh {
		t.Fatalf("cache hit diverges from cold run: %s vs %s", ch, wh)
	}
	if got := resultHash(warm); got != goldenHashes["fig6/seed=1"] {
		t.Fatalf("cached results hash = %s, want golden %s", got, goldenHashes["fig6/seed=1"])
	}

	// A second store (fresh process analogue: disk entries only) must
	// also replay identically after the in-memory layer is gone.
	store2, err := runcache.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	disk, err := core.RunCached(p, store2)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Hits() != 1 {
		t.Fatalf("disk replay missed: hits=%d misses=%d", store2.Hits(), store2.Misses())
	}
	if got := resultHash(disk); got != goldenHashes["fig6/seed=1"] {
		t.Fatalf("disk-replayed results hash = %s, want golden %s (JSON round-trip not exact?)",
			got, goldenHashes["fig6/seed=1"])
	}
}

// TestCacheKeyDistinguishesParams spot-checks the canonical encoding:
// every mutated field must produce a distinct cache key.
func TestCacheKeyDistinguishesParams(t *testing.T) {
	base := core.DefaultParams(8)
	keys := map[string]string{"base": base.CacheKey()}
	mutations := map[string]func(*core.Params){
		"seed":     func(p *core.Params) { p.Seed++ },
		"threads":  func(p *core.Params) { p.Threads++ },
		"iommu":    func(p *core.Params) { p.IOMMU = !p.IOMMU },
		"cc":       func(p *core.Params) { p.CC = core.CCDCTCP },
		"measure":  func(p *core.Params) { p.Measure += sim.Millisecond },
		"burst":    func(p *core.Params) { p.BurstDuty = 0.5 },
		"antagon":  func(p *core.Params) { p.AntagonistCores = 3 },
		"victim":   func(p *core.Params) { p.VictimConnGbps = 2 },
		"region":   func(p *core.Params) { p.RxRegionBytes *= 2 },
		"tlb":      func(p *core.Params) { p.DeviceTLBEntries = 64 },
		"scaling":  func(p *core.Params) { p.DynamicCoreScaling = true },
		"host_tgt": func(p *core.Params) { p.HostTarget = 50 * sim.Microsecond },
	}
	seen := map[string]string{keys["base"]: "base"}
	for name, mutate := range mutations {
		p := base
		mutate(&p)
		k := p.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q: key %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestCanonicalCoversAllParamsFields fails when a field is added to
// Params without extending Canonical: a missing field would alias
// distinct scenarios to the same cache entry, silently returning wrong
// results. Update Params.Canonical and the pinned count together.
func TestCanonicalCoversAllParamsFields(t *testing.T) {
	n := reflect.TypeOf(core.Params{}).NumField()
	if n != core.ParamsFieldCount {
		t.Fatalf("Params has %d fields but Canonical covers %d — extend Canonical() "+
			"in cache.go and bump ParamsFieldCount (and SimVersion if behavior changed)",
			n, core.ParamsFieldCount)
	}
}
