package core_test

import (
	"fmt"
	"log"

	"hic/internal/core"
	"hic/internal/sim"
)

// Example reproduces one point of Figure 3 — the paper's baseline at 12
// receiver cores with the IOMMU enabled — through the public API. (No
// Output comment: simulation wall time makes this compile-checked
// documentation rather than a golden test.)
func Example() {
	p := core.DefaultParams(12)
	res, err := core.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throughput %.1f Gbps, drops %.2f%%, %.2f IOTLB misses/packet\n",
		res.AppThroughputGbps, res.DropRatePct, res.IOTLBMissesPerPacket)
}

// ExampleRunMany sweeps Figure 6's antagonist axis in parallel.
func ExampleRunMany() {
	var ps []core.Params
	for _, antag := range []int{0, 8, 15} {
		p := core.DefaultParams(12)
		p.AntagonistCores = antag
		ps = append(ps, p)
	}
	rs, err := core.RunMany(ps)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rs {
		fmt.Printf("antagonists=%d: %.1f Gbps\n", ps[i].AntagonistCores, r.AppThroughputGbps)
		_ = i
	}
}

// ExampleParams_Build drives the testbed manually for time-series work.
func ExampleParams_Build() {
	p := core.DefaultParams(8)
	tb, err := p.Build()
	if err != nil {
		log.Fatal(err)
	}
	rec := tb.EnableTrace(100 * sim.Microsecond)
	tb.Run(p.Warmup, p.Measure)
	fmt.Printf("recorded %d samples across %d series\n", rec.Len(), len(rec.Names()))
}
