package core_test

import (
	"fmt"
	"testing"

	"hic/internal/core"
	"hic/internal/runcache"
)

// TestPooledGoldenDeterminism is the worker-pool counterpart of
// TestGoldenDeterminism: the golden scenarios run through RunMany —
// worker arenas, engine/registry reuse, batch-local singleflight — with
// every scenario duplicated, twice back to back so the second batch
// lands on arenas dirtied by the first. Every result, including the
// dedup-served duplicates, must still match the pre-rewrite golden
// hashes. This is the proof that arena reuse and dedup are invisible.
func TestPooledGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	var ps []core.Params
	var keys []string
	for _, seed := range []uint64{1, 7} {
		for _, name := range []string{"fig3", "fig6"} {
			// Two copies of each scenario: the second must be collapsed
			// onto the first by singleflight without changing its result.
			for c := 0; c < 2; c++ {
				ps = append(ps, goldenParams(name, seed))
				keys = append(keys, fmt.Sprintf("%s/seed=%d", name, seed))
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		rs, err := core.RunMany(ps)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if got := resultHash(r); got != goldenHashes[keys[i]] {
				t.Errorf("pass %d: %s (input %d) hash = %s, want %s (arena reuse or dedup changed results)",
					pass, keys[i], i, got, goldenHashes[keys[i]])
			}
		}
	}
}

// TestRunEachMatchesRunMany proves the streaming path emits exactly the
// RunMany results, in order.
func TestRunEachMatchesRunMany(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	ps := []core.Params{
		goldenParams("fig3", 1),
		goldenParams("fig6", 1),
		goldenParams("fig3", 1), // duplicate — exercises dedup in the stream
	}
	want, err := core.RunMany(ps)
	if err != nil {
		t.Fatal(err)
	}
	var gotIdx []int
	err = core.RunEach(ps, nil, func(i int, r core.Results) error {
		gotIdx = append(gotIdx, i)
		if resultHash(r) != resultHash(want[i]) {
			t.Errorf("streamed result %d diverges from RunMany", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != len(ps) {
		t.Fatalf("emitted %d of %d", len(gotIdx), len(ps))
	}
	for i, v := range gotIdx {
		if v != i {
			t.Fatalf("emission out of order: %v", gotIdx)
		}
	}
}

// TestRunManyCachedPooled drives the cached sweep path over the pool:
// a cold batch with duplicates must cost one simulation per distinct
// scenario, and a warm batch zero.
func TestRunManyCachedPooled(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ps := []core.Params{
		goldenParams("fig3", 1),
		goldenParams("fig3", 1),
		goldenParams("fig3", 1),
	}
	rs, err := core.RunManyCached(ps, store)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if got := resultHash(r); got != goldenHashes["fig3/seed=1"] {
			t.Errorf("cold result %d hash = %s, want golden", i, got)
		}
	}
	st := store.Stats()
	if st.Misses != 1 {
		t.Errorf("cold batch Misses = %d, want 1 (duplicates must not simulate)", st.Misses)
	}
	if st.Hits+st.Collapses != 2 {
		t.Errorf("cold batch hits+collapses = %d+%d, want 2", st.Hits, st.Collapses)
	}

	rs2, err := core.RunManyCached(ps, store)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs2 {
		if got := resultHash(r); got != goldenHashes["fig3/seed=1"] {
			t.Errorf("warm result %d hash = %s, want golden", i, got)
		}
	}
	if after := store.Stats(); after.Misses != st.Misses {
		t.Errorf("warm batch simulated: misses %d -> %d", st.Misses, after.Misses)
	}
}
