package core

import (
	"hic/internal/host"
	"hic/internal/obs"
	"hic/internal/runner"
	"hic/internal/sim"
)

// Warm-start entry points: the steady-state checkpointing half of the
// cross-run warm-start layer. A converged run's slow state (CC windows,
// IOTLB working set, memory demand EWMA — see host.Snapshot) is
// captured after a cold run and persisted by internal/fidelity; a later
// run of a nearby scenario in the same calibration signature primes a
// fresh testbed with that snapshot and replays only a short
// re-convergence guard window instead of the full warmup ramp.
//
// Warm-started results are approximate and must never be stored under
// the pure-DES cache salt; internal/fidelity derives a distinct
// "+warm(...)" version for them and audits a deterministic fraction
// against cold DES.

// DefaultWarmGuard returns the guard window for a warm start of p: a
// quarter of the configured warmup, floored at one millisecond (and
// never longer than the warmup it replaces). Long enough for the NIC
// buffer, PCIe credits, and pacing to re-establish around the primed
// slow state; short enough to keep the ramp saving that motivates warm
// starts.
func DefaultWarmGuard(p Params) sim.Duration {
	p.normalizeWindows()
	g := p.Warmup / 4
	if g < sim.Millisecond {
		g = sim.Millisecond
	}
	if g > p.Warmup {
		g = p.Warmup
	}
	return AlignWarmGuard(p, g)
}

// AlignWarmGuard rounds guard up to a whole number of burst periods for
// duty-cycled workloads, floored at one full period. The burst gate
// fires on period boundaries from t=0 and the first period runs
// ungated, so a sub-periodic guard starts measurement mid-period and
// folds part of that continuous-transmission phase into a duty-cycled
// window — inflating throughput 2× and more. Non-bursty configs pass
// through unchanged.
func AlignWarmGuard(p Params, g sim.Duration) sim.Duration {
	p.normalizeWindows()
	if p.BurstDuty <= 0 || p.BurstPeriod <= 0 {
		return g
	}
	periods := (g + p.BurstPeriod - 1) / p.BurstPeriod
	if periods < 1 {
		periods = 1
	}
	return periods * p.BurstPeriod
}

// RunAndSnapshotOn is RunOn plus a steady-state capture of the testbed
// after the measurement window — the checkpoint-producing cold run.
func RunAndSnapshotOn(p Params, a *runner.Arena) (Results, host.Snapshot, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, host.Snapshot{}, err
	}
	res := tb.Run(p.Warmup, p.Measure)
	snap := tb.Snapshot()
	if s := obs.Default(); s != nil {
		s.RunMetrics(tb.Registry.Snapshot())
	}
	return res, snap, nil
}

// RunAdaptiveAndSnapshotOn is RunAdaptiveOn plus a steady-state capture.
// An early-stopped run is still a valid donor: termination requires the
// convergence test to pass, so the captured state is converged by
// construction.
func RunAdaptiveAndSnapshotOn(p Params, a *runner.Arena, rule host.StopRule) (Results, host.Snapshot, bool, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, host.Snapshot{}, false, err
	}
	res, stopped := tb.RunAdaptive(p.Warmup, p.Measure, rule.Fit(p.Measure))
	return res, tb.Snapshot(), stopped, nil
}

// RunWarmOn runs p warm-started from a donor snapshot: a fresh testbed
// is built for p, primed with snap, and run with the guard window in
// place of the full warmup.
func RunWarmOn(p Params, snap host.Snapshot, guard sim.Duration, a *runner.Arena) (Results, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, err
	}
	tb.Prime(snap)
	res := tb.Run(guard, p.Measure)
	if s := obs.Default(); s != nil {
		s.RunMetrics(tb.Registry.Snapshot())
	}
	return res, nil
}

// RunWarmAdaptiveOn is RunWarmOn with steady-state early termination,
// and additionally captures the warm run's own snapshot so a warm chain
// keeps producing donors.
func RunWarmAdaptiveOn(p Params, snap host.Snapshot, guard sim.Duration, a *runner.Arena, rule host.StopRule) (Results, host.Snapshot, bool, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, host.Snapshot{}, false, err
	}
	tb.Prime(snap)
	res, stopped := tb.RunAdaptive(guard, p.Measure, rule.Fit(p.Measure))
	return res, tb.Snapshot(), stopped, nil
}
