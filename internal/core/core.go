// Package core is the library's front door: it exposes the paper's
// testbed as a small declarative API. Callers describe a scenario with
// Params — receiver threads, IOMMU on/off, hugepages, Rx region size,
// antagonist cores, congestion control, and the §4 extension knobs — and
// Run executes it, returning the measurements the paper plots
// (application throughput, drop rate, IOTLB misses per packet, memory
// bandwidth, host-delay percentiles).
//
// RunMany executes independent scenarios on the shared bounded worker
// pool (internal/runner): each worker owns a reusable arena — engine
// free lists, packet pool, metrics registry — reset between runs, and
// byte-identical duplicate scenarios are collapsed to one simulation by
// in-process singleflight. Each simulation remains single-threaded and
// deterministic for its seed, so sweeps are both fast and reproducible.
package core

import (
	"fmt"

	"hic/internal/host"
	"hic/internal/iommu"
	"hic/internal/mem"
	"hic/internal/model"
	"hic/internal/obs"
	"hic/internal/pkt"
	"hic/internal/runcache"
	"hic/internal/runner"
	"hic/internal/sim"
	"hic/internal/telemetry"
	"hic/internal/transport"
	"hic/internal/transport/dctcp"
	"hic/internal/transport/swift"
)

// CC selects the congestion-control protocol for a scenario.
type CC string

const (
	// CCSwift is the paper's protocol: delay-based with fabric and host
	// targets.
	CCSwift CC = "swift"
	// CCDCTCP is the ECN-fraction TCP-like baseline.
	CCDCTCP CC = "dctcp"
	// CCFixed sends with a constant window (no congestion reaction).
	CCFixed CC = "fixed"
)

// Params declares one scenario. The zero value is not runnable; start
// from DefaultParams.
type Params struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Threads is the receiver thread/core count (Figures 3–4 x-axis).
	Threads int
	// Senders is the number of sender machines.
	Senders int
	// RxRegionBytes is the per-thread registered Rx region (Figure 5).
	RxRegionBytes uint64
	// IOMMU enables DMA address translation.
	IOMMU bool
	// Hugepages maps payload regions with 2 MB pages (Figure 4 disables).
	Hugepages bool
	// AntagonistCores runs the STREAM antagonist (Figure 6 x-axis).
	AntagonistCores int
	// CC picks the protocol; CCSwift is the paper's setup.
	CC CC
	// FixedCwnd is the window for CCFixed (ignored otherwise; ≤0 ⇒ 1).
	FixedCwnd float64

	// HostTarget overrides Swift's host delay target (0 ⇒ 100 µs).
	HostTarget sim.Duration
	// NICBufferBytes overrides the NIC input buffer (0 ⇒ 1 MB).
	NICBufferBytes int
	// DeviceTLBEntries enables the ATS-style device TLB (§4(a)).
	DeviceTLBEntries int
	// StrictIOMMU switches to per-DMA map/unmap with invalidations —
	// the dynamic mode §3.1 notes is even worse than loose mode.
	StrictIOMMU bool
	// LinkLatencyScale scales the root-complex pipeline latency — the
	// CXL-style reduced-latency ablation (§4(b)). 0 means 1.0.
	LinkLatencyScale float64
	// MemoryIOReservedShare reserves memory bandwidth for the NIC — the
	// MBA/MPAM QoS ablation (§4(c)).
	MemoryIOReservedShare float64
	// SubRTTHostECN turns on the sub-RTT host congestion signal: the NIC
	// marks packets above half buffer occupancy and Swift (or DCTCP)
	// reacts immediately (§4 congestion-response discussion).
	SubRTTHostECN bool
	// FabricECNThresholdBytes enables switch ECN marking (used with
	// CCDCTCP).
	FabricECNThresholdBytes int
	// CPUCores caps stack processing cores independently of Threads
	// (0 = one per thread); InitialActiveCores and DynamicCoreScaling
	// drive the §4 software-congestion remedy.
	CPUCores           int
	InitialActiveCores int
	DynamicCoreScaling bool
	// AntagonistRemoteNUMA schedules the antagonist on the far NUMA
	// node (§4's coordinated-allocation response).
	AntagonistRemoteNUMA bool
	// CopyReadFraction overrides how much of each delivered payload the
	// receive-path copy re-reads from DRAM (0 = the calibrated default
	// of 0.28, matching the paper's measured 3.3 GB/s at full rate).
	// Footnote 2's DDIO discussion maps onto this knob: ≈0.05 models an
	// ideal direct-cache-access hit rate, 1.0 models DDIO disabled
	// (every copy fetches from DRAM).
	CopyReadFraction float64
	// PerQueueNICBuffers partitions the NIC input buffer per queue
	// (round-robin service) instead of the paper's shared SRAM.
	PerQueueNICBuffers bool
	// VictimConnGbps creates the asymmetric aggressor/victim workload
	// used by the buffer-partitioning ablation (see
	// host.Config.VictimConnGbps).
	VictimConnGbps float64
	// SenderHostModel enables the full sender-side TX path (footnote
	// 1's backpressure asymmetry); SenderAntagonistCores contends each
	// sender's memory bus.
	SenderHostModel       bool
	SenderAntagonistCores int
	// OfferedGbps caps the aggregate application demand across all
	// connections (0 = unlimited, i.e. the paper's saturating reads).
	// Hosts offered less than their access-link rate are how Figure 1's
	// low-utilization drops arise.
	OfferedGbps float64
	// BurstDuty, in (0,1), makes the workload bursty with the given duty
	// cycle over BurstPeriod (default 2 ms). Average utilization drops
	// with the duty cycle while burst onsets still overflow the NIC.
	BurstDuty   float64
	BurstPeriod sim.Duration

	// Warmup and Measure set the discarded and measured windows.
	Warmup  sim.Duration
	Measure sim.Duration
}

// DefaultParams returns the paper's baseline scenario at the given
// receiver thread count: 40 senders, IOMMU on, hugepages, 12 MB regions,
// Swift, no antagonist.
func DefaultParams(threads int) Params {
	return Params{
		Seed:          1,
		Threads:       threads,
		Senders:       40,
		RxRegionBytes: 12 << 20,
		IOMMU:         true,
		Hugepages:     true,
		CC:            CCSwift,
		Warmup:        20 * sim.Millisecond,
		Measure:       30 * sim.Millisecond,
	}
}

// Results re-exports the testbed measurement bundle.
type Results = host.Results

// hostConfig lowers Params onto the full substrate configuration.
func (p Params) hostConfig() (host.Config, error) {
	if p.Threads <= 0 {
		return host.Config{}, fmt.Errorf("core: Threads must be positive")
	}
	if p.Senders <= 0 {
		return host.Config{}, fmt.Errorf("core: Senders must be positive")
	}
	if p.Warmup < 0 || p.Measure <= 0 {
		return host.Config{}, fmt.Errorf("core: bad warmup/measure windows")
	}
	cfg := host.DefaultConfig(p.Threads)
	cfg.Seed = p.Seed
	cfg.Senders = p.Senders
	if p.RxRegionBytes > 0 {
		cfg.RxRegionBytes = p.RxRegionBytes
	}
	cfg.Hugepages = p.Hugepages
	cfg.AntagonistCores = p.AntagonistCores

	if !p.IOMMU {
		cfg.IOMMU = iommu.Config{Enabled: false}
	} else {
		if p.DeviceTLBEntries > 0 {
			cfg.IOMMU.DeviceTLBEntries = p.DeviceTLBEntries
		}
		if p.StrictIOMMU {
			cfg.IOMMU.Mode = iommu.StrictMode
		}
	}
	if p.NICBufferBytes > 0 {
		cfg.NIC.BufferBytes = p.NICBufferBytes
	}
	if p.SubRTTHostECN {
		cfg.NIC.HostECNThreshold = cfg.NIC.BufferBytes / 2
	}
	if p.LinkLatencyScale > 0 {
		cfg.PCIe.RootComplexLatency = sim.Duration(
			float64(cfg.PCIe.RootComplexLatency) * p.LinkLatencyScale)
	}
	if p.MemoryIOReservedShare > 0 {
		cfg.Memory.IOReservedShare = p.MemoryIOReservedShare
	}
	if p.FabricECNThresholdBytes > 0 {
		cfg.Fabric.ECNThresholdBytes = p.FabricECNThresholdBytes
	}
	if p.OfferedGbps > 0 {
		conns := float64(p.Senders * p.Threads)
		cfg.Transport.AppRateLimit = sim.BitsPerSecond(p.OfferedGbps * 1e9 / conns)
	}
	cfg.CPUCores = p.CPUCores
	cfg.InitialActiveCores = p.InitialActiveCores
	cfg.DynamicCoreScaling = p.DynamicCoreScaling
	cfg.AntagonistRemoteNUMA = p.AntagonistRemoteNUMA
	cfg.SenderHostModel = p.SenderHostModel
	cfg.SenderAntagonistCores = p.SenderAntagonistCores
	cfg.NIC.PerQueueBuffers = p.PerQueueNICBuffers
	if p.CopyReadFraction > 0 {
		cfg.CPU.CopyReadFraction = p.CopyReadFraction
	}
	cfg.VictimConnGbps = p.VictimConnGbps
	if p.BurstDuty > 0 {
		cfg.BurstDuty = p.BurstDuty
		cfg.BurstPeriod = p.BurstPeriod
		if cfg.BurstPeriod == 0 {
			cfg.BurstPeriod = 2 * sim.Millisecond
		}
	}

	switch p.CC {
	case CCSwift, "":
		scfg := swift.DefaultConfig()
		if p.HostTarget > 0 {
			scfg.HostTarget = p.HostTarget
		}
		scfg.SubRTTHostECN = p.SubRTTHostECN
		cfg.CC = func() (transport.CongestionControl, error) {
			return swift.New(scfg, cfg.InitialCwnd)
		}
	case CCDCTCP:
		dcfg := dctcp.DefaultConfig()
		dcfg.ReactToHostECN = p.SubRTTHostECN
		cfg.CC = func() (transport.CongestionControl, error) {
			return dctcp.New(dcfg, cfg.InitialCwnd)
		}
	case CCFixed:
		w := p.FixedCwnd
		if w <= 0 {
			w = 1
		}
		cfg.CC = func() (transport.CongestionControl, error) {
			return dctcp.NewFixed(w), nil
		}
	default:
		return host.Config{}, fmt.Errorf("core: unknown congestion control %q", p.CC)
	}
	return cfg, nil
}

// Build constructs the testbed without running it, for callers that want
// to instrument or drive it manually.
func (p Params) Build() (*host.Testbed, error) {
	return p.BuildOn(nil)
}

// BuildOn constructs the testbed, reusing the arena's engine, packet
// pool, and registry when a worker arena is supplied (nil builds fresh
// substrate, identical to the pre-pool path). host.NewWith resets every
// reused component to its post-construction state, so the two paths
// produce bit-identical simulations.
func (p Params) BuildOn(a *runner.Arena) (*host.Testbed, error) {
	cfg, err := p.hostConfig()
	if err != nil {
		return nil, err
	}
	if a == nil {
		return host.New(cfg)
	}
	engine, pool, registry := a.Acquire()
	return host.NewWith(host.Runtime{Engine: engine, Pool: pool, Registry: registry}, cfg)
}

// Run executes one scenario: build, warm up, measure.
func Run(p Params) (Results, error) {
	return RunOn(p, nil)
}

// RunOn is Run on a worker arena: the arena's engine free lists, packet
// pool, and metrics registry are reset and reused instead of
// reallocated, which is what makes fleet-scale fan-out allocation-flat.
// A nil arena is exactly Run.
func RunOn(p Params, a *runner.Arena) (Results, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, err
	}
	res := tb.Run(p.Warmup, p.Measure)
	// Fold the completed run's registry into the control plane's
	// fleet-cumulative rollup. Snapshotting here is safe — the run is
	// done and the arena is still exclusively ours — and the disabled
	// path costs one atomic load and a nil check.
	if s := obs.Default(); s != nil {
		s.RunMetrics(tb.Registry.Snapshot())
	}
	return res, nil
}

// normalizeWindows fills in the default warmup/measure windows so every
// execution (and cache-key computation) sees the windows that actually
// run.
func (p *Params) normalizeWindows() {
	if p.Warmup == 0 && p.Measure == 0 {
		d := DefaultParams(1)
		p.Warmup, p.Measure = d.Warmup, d.Measure
	}
}

// RunInstrumented executes one scenario with pipeline telemetry enabled
// at the given span-sampling rate and returns the measurement results
// alongside the telemetry run (sampled spans + drop ledger), ready for
// the internal/telemetry exporters. Sampling decisions come from an
// engine-forked RNG, so the same Params and rate reproduce the same
// spans byte for byte.
func RunInstrumented(p Params, spanRate float64) (Results, *telemetry.Run, error) {
	return RunInstrumentedOn(p, spanRate, nil)
}

// RunInstrumentedOn is RunInstrumented on a worker arena (nil arena
// builds fresh substrate).
func RunInstrumentedOn(p Params, spanRate float64, a *runner.Arena) (Results, *telemetry.Run, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, nil, err
	}
	run := tb.EnableSpans(spanRate)
	res := tb.Run(p.Warmup, p.Measure)
	return res, run, nil
}

// RunMany executes scenarios on the shared worker pool and returns
// results in input order. Byte-identical Params are simulated once and
// the result shared (the simulator is deterministic per seed, so this is
// invisible in the output). The first build/run error aborts the sweep.
func RunMany(ps []Params) ([]Results, error) {
	return runMany(ps, nil)
}

// runMany is the shared sweep executor; cache may be nil. Without a
// store, a batch-local singleflight still collapses duplicate Params
// within the batch.
func runMany(ps []Params, cache *runcache.Store) ([]Results, error) {
	results := make([]Results, len(ps))
	var flight *runcache.Flight
	if cache == nil {
		flight = runcache.NewFlight(true)
	}
	err := runner.Shared().Map(len(ps), func(i int, a *runner.Arena) error {
		r, err := runCachedOn(ps[i], cache, flight, a)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunEach executes scenarios on the shared worker pool and streams
// results to emit in input order, without materializing the whole result
// slice — the fleet-scale path where memory stays O(workers), not
// O(scenarios). Duplicate Params are deduplicated exactly as in RunMany.
// A non-nil emit error aborts the sweep and is returned.
func RunEach(ps []Params, cache *runcache.Store, emit func(i int, r Results) error) error {
	var flight *runcache.Flight
	if cache == nil {
		flight = runcache.NewFlight(true)
	}
	return runner.MapOrdered(runner.Shared(), len(ps),
		func(i int, a *runner.Arena) (Results, error) {
			return runCachedOn(ps[i], cache, flight, a)
		}, emit)
}

// RunReplicated executes the scenario n times with derived seeds and
// returns all results, for mean±CI reporting across seed noise.
func RunReplicated(p Params, n int) ([]Results, error) {
	if n < 1 {
		n = 1
	}
	ps := make([]Params, n)
	for i := range ps {
		ps[i] = p
		ps[i].Seed = p.Seed + uint64(i)*0x9e3779b97f4a7c15
	}
	return RunMany(ps)
}

// ModeledThroughput evaluates the paper's Little's-law bound for a
// scenario, using the scenario's PCIe credit pool and the measured
// misses-per-packet (the paper plots this line against measurement for
// the credit-limited regime, threads ≥ 10).
func ModeledThroughput(p Params, missesPerPacket float64) (sim.BitsPerSecond, error) {
	cfg, err := p.hostConfig()
	if err != nil {
		return 0, err
	}
	mtu := cfg.Transport.MTU
	wire := cfg.PCIe.WireBytes(mtu + cfg.NIC.CompletionBytes)

	// Tbase: link serialization (doubled — in the credit-limited regime
	// a granted packet also waits behind the transfer in service on the
	// serial link), three uncontended memory accesses (descriptor read,
	// payload write, completion write), a steady-state memory-FIFO
	// queueing allowance, and the root-complex pipeline.
	rate := float64(cfg.PCIe.RawBandwidth()) * cfg.PCIe.LinkEfficiency
	transmit := sim.BitsPerSecond(rate).TransmitTime(cfg.PCIe.WireBytes(mtu))
	memIdle := model.LoadLatency(cfg.Memory.BaseLatency, 0.15,
		cfg.Memory.LoadCurveA, cfg.Memory.LoadCurveB, cfg.Memory.MaxLoadFactor)
	const memQueueAllowance = 150 * sim.Nanosecond
	tbase := 2*transmit + 3*memIdle + memQueueAllowance + cfg.PCIe.RootComplexLatency

	// Tmiss: one walk read (PWC covers upper levels) + walker step.
	tmiss := memIdle + cfg.IOMMU.WalkStepLatency

	// Only the Rx-chain translations hold credits; the TX (ACK-side)
	// translations pressure the IOTLB but not the credit pool. Rx
	// translations are 3 of the 5 per packet.
	rxMisses := missesPerPacket * 3 / 5
	bound := model.ThroughputBound(cfg.PCIe.CreditBytes, wire, mtu, tbase, rxMisses, tmiss)

	// The bound cannot exceed the PCIe goodput or the wire ceiling.
	ceiling := model.MaxAchievableThroughput(cfg.Fabric.AccessLinkRate, mtu, pkt.HeaderBytes)
	if g := cfg.PCIe.Goodput(); sim.BitsPerSecond(float64(g)*float64(mtu)/float64(cfg.PCIe.WireBytes(mtu))) < ceiling {
		ceiling = sim.BitsPerSecond(float64(g) * float64(mtu) / float64(cfg.PCIe.WireBytes(mtu)))
	}
	if bound > ceiling {
		bound = ceiling
	}
	return bound, nil
}

// Paper-testbed constants re-exported for experiment code and docs.
var (
	// MaxAchievable is the ~92 Gbps application ceiling.
	MaxAchievable = model.MaxAchievableThroughput(sim.Gbps(100), 4096, pkt.HeaderBytes)
	// BlindThreshold is the ~81 Gbps CC reaction threshold.
	BlindThreshold = model.CCBlindThreshold(1<<20, 100*sim.Microsecond, 4096.0/4452.0)
)

// MemoryDefaults exposes the memory configuration used by the testbed
// (for experiment code that annotates results).
func MemoryDefaults() mem.Config { return mem.DefaultConfig() }
