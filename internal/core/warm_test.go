package core

import (
	"testing"

	"hic/internal/sim"
)

func TestAlignWarmGuard(t *testing.T) {
	p := DefaultParams(4)
	if got := AlignWarmGuard(p, 3*sim.Millisecond); got != 3*sim.Millisecond {
		t.Errorf("non-bursty guard changed: %v", got)
	}
	p.BurstDuty, p.BurstPeriod = 0.2, 2*sim.Millisecond
	cases := []struct{ in, want sim.Duration }{
		{0, 2 * sim.Millisecond},
		{sim.Millisecond, 2 * sim.Millisecond},
		{2 * sim.Millisecond, 2 * sim.Millisecond},
		{2*sim.Millisecond + 1, 4 * sim.Millisecond},
	}
	for _, c := range cases {
		if got := AlignWarmGuard(p, c.in); got != c.want {
			t.Errorf("AlignWarmGuard(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if g := DefaultWarmGuard(p); g <= 0 || g%p.BurstPeriod != 0 {
		t.Errorf("DefaultWarmGuard(bursty) = %v, want positive whole number of burst periods", g)
	}
}
