package core

import (
	"hic/internal/obs"
	"hic/internal/observatory"
	"hic/internal/runner"
)

// RunObserved executes one scenario with the sim-time observatory
// attached: the datapath signals are sampled on the engine clock and
// folded into congestion episodes while the run executes. Sampling is
// passive — the returned Results are bit-identical to Run's for the
// same Params (the golden-hash tests prove it).
func RunObserved(p Params, ocfg observatory.Config) (Results, *observatory.HostReport, error) {
	return RunObservedOn(p, ocfg, nil)
}

// RunObservedOn is RunObserved on a worker arena (nil arena builds
// fresh substrate).
func RunObservedOn(p Params, ocfg observatory.Config, a *runner.Arena) (Results, *observatory.HostReport, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, nil, err
	}
	mon := observatory.Attach(tb, ocfg)
	res := tb.Run(p.Warmup, p.Measure)
	// Same fleet-rollup fold as RunOn: the run is complete and the
	// arena still exclusively ours.
	if s := obs.Default(); s != nil {
		s.RunMetrics(tb.Registry.Snapshot())
	}
	return res, mon.Report(), nil
}
