package core

import (
	"fmt"
	"sync/atomic"

	"hic/internal/fluid"
	"hic/internal/host"
	"hic/internal/obs"
	"hic/internal/runcache"
	"hic/internal/runner"
)

// Executor routes one scenario to an execution strategy. The default
// (nil, or DES{}) is full packet-level simulation; internal/fidelity
// provides a router that substitutes the calibrated fluid model where
// it is sound and adds steady-state early termination to DES points.
//
// Plan must be deterministic for a given Params and must return the
// cache version salt the chosen execution's result is stored under:
// exactly SimVersion when (and only when) the result is bit-identical
// to pure DES, a distinct salt otherwise. The singleflight and run
// cache key on that salt, so approximate results can never be returned
// to (or collapsed with) a pure-DES request — see internal/runcache's
// package documentation.
type Executor interface {
	Plan(p Params) (version string, run func(*runner.Arena) (Results, error), err error)
}

// DES is the pure packet-level executor. Routing through it is
// byte-identical (same results, same cache keys) to no executor at all.
type DES struct{}

func (DES) Plan(p Params) (string, func(*runner.Arena) (Results, error), error) {
	return SimVersion, func(a *runner.Arena) (Results, error) { return RunOn(p, a) }, nil
}

// EarlyStop executes DES with the steady-state sequential stopping rule
// (host.Testbed.RunAdaptive): the measurement window ends as soon as
// per-window goodput and drop moments converge, and counters are scaled
// to the full window. Results may therefore differ from a full-window
// run, so keys are salted with the rule.
type EarlyStop struct {
	Rule host.StopRule
	// Stopped counts executions the rule actually terminated early
	// (cache hits and unconverged runs excluded).
	Stopped atomic.Uint64
}

// Version is the cache salt: pure-DES results and early-stopped results
// never share an entry, and neither do runs under different rules. The
// "estop2" revision marks the adaptive-warmup variant of the rule —
// bump the prefix whenever RunAdaptive's procedure changes.
func (e *EarlyStop) Version() string {
	return fmt.Sprintf("%s+estop2(%d,%d,%g)", SimVersion,
		int64(e.Rule.Window), e.Rule.MinWindows, e.Rule.RelTol)
}

func (e *EarlyStop) Plan(p Params) (string, func(*runner.Arena) (Results, error), error) {
	return e.Version(), func(a *runner.Arena) (Results, error) {
		r, stopped, err := RunAdaptiveOn(p, a, e.Rule)
		if stopped {
			e.Stopped.Add(1)
			if s := obs.Default(); s != nil {
				s.Emit(obs.Event{Kind: obs.KindEarlyStop, Key: p.Canonical()})
			}
		}
		return r, err
	}, nil
}

// RunAdaptiveOn is RunOn under a steady-state stopping rule; the
// boolean reports whether the window was terminated early. The rule's
// window is fitted to the scenario's measure (host.StopRule.Fit) so
// short fleet windows still stop early; the fit is deterministic per
// Params, so the EarlyStop version salt (which records the configured
// rule) still uniquely describes each point's behavior.
func RunAdaptiveOn(p Params, a *runner.Arena, rule host.StopRule) (Results, bool, error) {
	p.normalizeWindows()
	tb, err := p.BuildOn(a)
	if err != nil {
		return Results{}, false, err
	}
	r, stopped := tb.RunAdaptive(p.Warmup, p.Measure, rule.Fit(p.Measure))
	return r, stopped, nil
}

// FluidVersion salts cache entries produced by the fluid solver (via
// fidelity routing). Bump its suffix whenever the solver's output for a
// given Params can change.
const FluidVersion = SimVersion + "+fluid-1"

// RunFluid evaluates the scenario with the analytical fluid solver
// (internal/fluid) instead of simulating it: the Params are lowered
// onto the same substrate configuration DES would use, and the solver
// returns the steady-state operating point in the Results shape plus
// the regime diagnostics the fidelity router needs. Scenarios outside
// the fluid model's domain return fluid.ErrUnsupported.
func RunFluid(p Params) (fluid.Prediction, error) {
	p.normalizeWindows()
	cfg, err := p.hostConfig()
	if err != nil {
		return fluid.Prediction{}, err
	}
	var cc fluid.Protocol
	switch p.CC {
	case CCSwift, "":
		cc = fluid.Swift
	case CCDCTCP:
		cc = fluid.DCTCP
	case CCFixed:
		cc = fluid.Fixed
	default:
		return fluid.Prediction{}, fmt.Errorf("core: unknown congestion control %q", p.CC)
	}
	return fluid.Predict(cfg, cc, p.HostTarget, p.Measure)
}

// PlanVia normalizes p's windows and asks exec for its execution plan —
// the entry point for callers that need the routing decision itself
// rather than the executed result (sweep telemetry uses it to learn
// whether a point would be fluid-routed, where span instrumentation is
// meaningless). A nil executor plans pure DES.
func PlanVia(exec Executor, p Params) (string, func(*runner.Arena) (Results, error), error) {
	p.normalizeWindows()
	if exec == nil {
		return DES{}.Plan(p)
	}
	return exec.Plan(p)
}

// runVia is runCachedOn with an executor deciding strategy and cache
// salt per point. A nil executor is the pure-DES path, byte-identical
// to the pre-fidelity funnel.
func runVia(exec Executor, p Params, cache *runcache.Store, flight *runcache.Flight, a *runner.Arena) (Results, error) {
	if exec == nil {
		return runCachedOn(p, cache, flight, a)
	}
	p.normalizeWindows()
	version, run, err := exec.Plan(p)
	if err != nil {
		return Results{}, err
	}
	if cache == nil && flight == nil {
		return run(a)
	}
	canonical := p.Canonical()
	key := runcache.Key(version, canonical)
	compute := func() (Results, error) { return run(a) }
	if cache != nil {
		return cache.GetOrCompute(key, version, canonical, compute)
	}
	return flight.Do(key, compute)
}

// RunVia executes one scenario through the executor and (optional)
// cache. A nil executor degrades to RunCached.
func RunVia(exec Executor, p Params, cache *runcache.Store) (Results, error) {
	return runVia(exec, p, cache, nil, nil)
}

// RunOnVia is RunVia on a caller-managed arena with an optional
// batch-local singleflight — the building block streaming drivers
// (internal/cluster) use to route points while keeping their own
// dedup accounting. flight is consulted only when cache is nil.
func RunOnVia(exec Executor, p Params, cache *runcache.Store, flight *runcache.Flight, a *runner.Arena) (Results, error) {
	return runVia(exec, p, cache, flight, a)
}

// RunManyVia is RunMany with an executor routing each point. Results
// come back in input order; duplicate Params still collapse to one
// execution, but only within the same cache version (a fluid-routed
// point can never satisfy a DES-routed one).
func RunManyVia(exec Executor, ps []Params, cache *runcache.Store) ([]Results, error) {
	results := make([]Results, len(ps))
	var flight *runcache.Flight
	if cache == nil {
		flight = runcache.NewFlight(true)
	}
	err := runner.Shared().Map(len(ps), func(i int, a *runner.Arena) error {
		r, err := runVia(exec, ps[i], cache, flight, a)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunEachVia is RunEach with an executor routing each point.
func RunEachVia(exec Executor, ps []Params, cache *runcache.Store, emit func(i int, r Results) error) error {
	var flight *runcache.Flight
	if cache == nil {
		flight = runcache.NewFlight(true)
	}
	return runner.MapOrdered(runner.Shared(), len(ps),
		func(i int, a *runner.Arena) (Results, error) {
			return runVia(exec, ps[i], cache, flight, a)
		}, emit)
}
