package core_test

import (
	"fmt"
	"testing"

	"hic/internal/core"
	"hic/internal/observatory"
)

// TestObservatoryPassiveOnGoldens proves sampling is passive: with the
// observatory attached, all four pinned scenarios still hash to the
// pre-rewrite golden Results bit-for-bit. The sampler only reads
// datapath state and draws no engine randomness, so the event sequence
// is untouched.
func TestObservatoryPassiveOnGoldens(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		for _, name := range []string{"fig3", "fig6"} {
			r, rep, err := core.RunObserved(goldenParams(name, seed), observatory.DefaultConfig())
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			key := fmt.Sprintf("%s/seed=%d", name, seed)
			if got := resultHash(r); got != goldenHashes[key] {
				t.Errorf("%s with observatory hashes %s, want %s (sampling is not passive)",
					key, got, goldenHashes[key])
			}
			if rep == nil || rep.Samples == 0 {
				t.Errorf("%s: observatory attached but took no samples", key)
			}
		}
	}
}
