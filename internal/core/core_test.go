package core

import (
	"testing"

	"hic/internal/sim"
)

func quickParams(threads int) Params {
	p := DefaultParams(threads)
	p.Senders = 8
	p.Warmup = 3 * sim.Millisecond
	p.Measure = 5 * sim.Millisecond
	return p
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Threads = 0 },
		func(p *Params) { p.Senders = 0 },
		func(p *Params) { p.Measure = -1 },
		func(p *Params) { p.CC = "bogus" },
	}
	for i, mutate := range bad {
		p := quickParams(2)
		mutate(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := Run(quickParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AppThroughputGbps <= 0 {
		t.Error("no throughput")
	}
	if res.AppThroughputGbps > MaxAchievable.Gbps()+0.5 {
		t.Errorf("throughput %v exceeds the %v ceiling",
			res.AppThroughputGbps, MaxAchievable.Gbps())
	}
}

func TestCCVariants(t *testing.T) {
	for _, cc := range []CC{CCSwift, CCDCTCP, CCFixed} {
		p := quickParams(2)
		p.CC = cc
		if cc == CCDCTCP {
			p.FabricECNThresholdBytes = 70 << 10
		}
		res, err := Run(p)
		if err != nil {
			t.Fatalf("%s: %v", cc, err)
		}
		if res.Goodput == 0 {
			t.Errorf("%s: no goodput", cc)
		}
	}
}

func TestIOMMUOffMatchesOrBeatsOn(t *testing.T) {
	on := quickParams(12)
	on.Warmup, on.Measure = 8*sim.Millisecond, 10*sim.Millisecond
	on.Senders = 40
	off := on
	off.IOMMU = false
	ron, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if ron.AppThroughputGbps > roff.AppThroughputGbps+1 {
		t.Errorf("IOMMU ON (%v) beat OFF (%v)", ron.AppThroughputGbps, roff.AppThroughputGbps)
	}
	if ron.IOTLBMissesPerPacket <= 0 {
		t.Error("no IOTLB misses at 12 threads with IOMMU on")
	}
	if roff.IOTLBMissesPerPacket != 0 {
		t.Error("IOTLB misses reported with IOMMU off")
	}
}

func TestOfferedLoadCapsUtilization(t *testing.T) {
	p := quickParams(4)
	p.OfferedGbps = 20
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppThroughputGbps > 22 {
		t.Errorf("offered 20 Gbps but delivered %v", res.AppThroughputGbps)
	}
	if res.AppThroughputGbps < 15 {
		t.Errorf("offered 20 Gbps but delivered only %v", res.AppThroughputGbps)
	}
}

func TestBurstDutyLowersUtilization(t *testing.T) {
	p := quickParams(4)
	p.Warmup, p.Measure = 6*sim.Millisecond, 10*sim.Millisecond
	p.BurstDuty = 0.3
	p.BurstPeriod = sim.Millisecond
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(quickParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.AppThroughputGbps > 0.6*full.AppThroughputGbps {
		t.Errorf("bursty throughput %v not ≪ saturating %v",
			res.AppThroughputGbps, full.AppThroughputGbps)
	}
}

func TestRunManyOrderAndParallel(t *testing.T) {
	ps := []Params{quickParams(2), quickParams(4), quickParams(6)}
	rs, err := RunMany(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	// CPU-bound region: throughput ordering must follow thread count.
	if !(rs[0].AppThroughputGbps < rs[1].AppThroughputGbps &&
		rs[1].AppThroughputGbps < rs[2].AppThroughputGbps) {
		t.Errorf("results out of order: %v %v %v",
			rs[0].AppThroughputGbps, rs[1].AppThroughputGbps, rs[2].AppThroughputGbps)
	}
	// And identical to serial runs (parallelism must not change results).
	serial, err := Run(ps[1])
	if err != nil {
		t.Fatal(err)
	}
	if serial != rs[1] {
		t.Error("parallel result differs from serial run")
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	bad := quickParams(2)
	bad.CC = "bogus"
	if _, err := RunMany([]Params{quickParams(2), bad}); err == nil {
		t.Error("sweep error not propagated")
	}
}

func TestModeledThroughputReasonable(t *testing.T) {
	p := quickParams(12)
	noMiss, err := ModeledThroughput(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With no misses the bound must sit at or above the wire ceiling.
	if noMiss.Gbps() < 90 {
		t.Errorf("no-miss model = %.1f Gbps, want ≈ ceiling", noMiss.Gbps())
	}
	missy, err := ModeledThroughput(p, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if missy >= noMiss {
		t.Error("model not decreasing in misses")
	}
	if missy.Gbps() < 60 || missy.Gbps() > 90 {
		t.Errorf("2-miss model = %.1f Gbps, want 60..90", missy.Gbps())
	}
}

func TestPaperConstants(t *testing.T) {
	if g := MaxAchievable.Gbps(); g < 91.5 || g > 92.5 {
		t.Errorf("MaxAchievable = %.1f, want ≈92", g)
	}
	if g := BlindThreshold.Gbps(); g < 75 || g > 82 {
		t.Errorf("BlindThreshold = %.1f, want ≈77-81", g)
	}
}

func TestExtensionKnobs(t *testing.T) {
	// Each §4 knob must build and run.
	knobs := []func(*Params){
		func(p *Params) { p.DeviceTLBEntries = 512 },
		func(p *Params) { p.LinkLatencyScale = 0.5 },
		func(p *Params) { p.MemoryIOReservedShare = 0.15 },
		func(p *Params) { p.SubRTTHostECN = true },
		func(p *Params) { p.HostTarget = 50 * sim.Microsecond },
		func(p *Params) { p.NICBufferBytes = 2 << 20 },
		func(p *Params) { p.Hugepages = false },
	}
	for i, k := range knobs {
		p := quickParams(4)
		k(&p)
		if _, err := Run(p); err != nil {
			t.Errorf("knob %d: %v", i, err)
		}
	}
}

// TestModeledTracksSimulated is the Figure-3 "Modeled App Throughput"
// validation: in the credit-limited regime the Little's-law bound
// evaluated at the measured miss rate must track the simulation.
func TestModeledTracksSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window points are slow")
	}
	for _, threads := range []int{12, 16} {
		p := DefaultParams(threads)
		p.Warmup, p.Measure = 15*sim.Millisecond, 20*sim.Millisecond
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := ModeledThroughput(p, res.IOTLBMissesPerPacket)
		if err != nil {
			t.Fatal(err)
		}
		ratio := bound.Gbps() / res.AppThroughputGbps
		if ratio < 0.95 || ratio > 1.15 {
			t.Errorf("threads=%d: model %.1f vs simulated %.1f (ratio %.2f)",
				threads, bound.Gbps(), res.AppThroughputGbps, ratio)
		}
	}
}
