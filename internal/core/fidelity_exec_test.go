package core_test

import (
	"testing"

	"hic/internal/core"
	"hic/internal/fidelity"
	"hic/internal/runcache"
)

// TestGoldenDeterminismViaDESRouter proves the fidelity layer is
// invisible when disabled: routing the golden scenarios through a
// ModeDES router (the -fidelity=des CLI path) reproduces the exact
// pre-fidelity hashes pinned in determinism_test.go.
func TestGoldenDeterminismViaDESRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7} {
		for _, name := range []string{"fig3", "fig6"} {
			p := goldenParams(name, seed)
			r, err := core.RunVia(router, p, nil)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			key := name + "/seed=" + map[uint64]string{1: "1", 7: "7"}[seed]
			if got := resultHash(r); got != goldenHashes[key] {
				t.Errorf("DES router: %s results hash = %s, want %s (router not transparent)",
					key, got, goldenHashes[key])
			}
		}
	}
	c := router.Counters()
	if c.FluidRouted != 0 || c.EarlyStopped != 0 {
		t.Errorf("ModeDES router took an approximate path: %+v", c)
	}
}

// TestFluidAndDESNeverShareCacheEntry pins the cache-salt separation the
// runcache package documents: a fluid-computed result stored in a cache
// directory can never satisfy a pure-DES lookup for the same Params.
// The DES run after a fluid run of the identical scenario must miss,
// simulate, and still produce the golden hash.
func TestFluidAndDESNeverShareCacheEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams("fig3", 1)

	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeFluid})
	if err != nil {
		t.Fatal(err)
	}
	version, _, err := router.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if version == core.SimVersion {
		t.Fatalf("fig3 point fell back to DES (version %q); fluid domain regressed", version)
	}
	if runcache.Key(version, p.Canonical()) == p.CacheKey() {
		t.Fatal("fluid version salt produced the pure-DES cache key")
	}
	if _, err := core.RunVia(router, p, store); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses != 1 {
		t.Fatalf("fluid run: misses=%d, want 1", st.Misses)
	}

	des, err := core.RunCached(p, store)
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits != 0 {
		t.Fatalf("pure-DES lookup hit a fluid entry: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("misses=%d, want 2 (fluid and DES entries are distinct)", st.Misses)
	}
	if got := resultHash(des); got != goldenHashes["fig3/seed=1"] {
		t.Fatalf("DES result after fluid run hashes %s, want golden %s", got, goldenHashes["fig3/seed=1"])
	}
}
