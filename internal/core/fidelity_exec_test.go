package core_test

import (
	"testing"

	"hic/internal/core"
	"hic/internal/fidelity"
	"hic/internal/runcache"
	"hic/internal/sim"
)

// TestGoldenDeterminismViaDESRouter proves the fidelity layer is
// invisible when disabled: routing the golden scenarios through a
// ModeDES router (the -fidelity=des CLI path) reproduces the exact
// pre-fidelity hashes pinned in determinism_test.go.
func TestGoldenDeterminismViaDESRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7} {
		for _, name := range []string{"fig3", "fig6"} {
			p := goldenParams(name, seed)
			r, err := core.RunVia(router, p, nil)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			key := name + "/seed=" + map[uint64]string{1: "1", 7: "7"}[seed]
			if got := resultHash(r); got != goldenHashes[key] {
				t.Errorf("DES router: %s results hash = %s, want %s (router not transparent)",
					key, got, goldenHashes[key])
			}
		}
	}
	c := router.Counters()
	if c.FluidRouted != 0 || c.EarlyStopped != 0 {
		t.Errorf("ModeDES router took an approximate path: %+v", c)
	}
}

// TestFluidAndDESNeverShareCacheEntry pins the cache-salt separation the
// runcache package documents: a fluid-computed result stored in a cache
// directory can never satisfy a pure-DES lookup for the same Params.
// The DES run after a fluid run of the identical scenario must miss,
// simulate, and still produce the golden hash.
func TestFluidAndDESNeverShareCacheEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams("fig3", 1)

	router, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeFluid})
	if err != nil {
		t.Fatal(err)
	}
	version, _, err := router.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if version == core.SimVersion {
		t.Fatalf("fig3 point fell back to DES (version %q); fluid domain regressed", version)
	}
	if runcache.Key(version, p.Canonical()) == p.CacheKey() {
		t.Fatal("fluid version salt produced the pure-DES cache key")
	}
	if _, err := core.RunVia(router, p, store); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses != 1 {
		t.Fatalf("fluid run: misses=%d, want 1", st.Misses)
	}

	des, err := core.RunCached(p, store)
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits != 0 {
		t.Fatalf("pure-DES lookup hit a fluid entry: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("misses=%d, want 2 (fluid and DES entries are distinct)", st.Misses)
	}
	if got := resultHash(des); got != goldenHashes["fig3/seed=1"] {
		t.Fatalf("DES result after fluid run hashes %s, want golden %s", got, goldenHashes["fig3/seed=1"])
	}
}

// TestWarmAndDESNeverShareCacheEntry extends the salt-separation pin to
// the checkpoint-warm-start layer: a warm-started result stored in a
// cache directory can never satisfy a pure-DES lookup for the same
// Params — the DES run after it must miss and simulate cold.
func TestWarmAndDESNeverShareCacheEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs DES")
	}
	warmDir := t.TempDir()
	p := core.DefaultParams(4)
	p.Warmup, p.Measure = 2*sim.Millisecond, 3*sim.Millisecond

	// Process 1: a cold run donates a checkpoint to the warm store.
	warm1, err := runcache.Open(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES, Warm: fidelity.WarmFull, WarmStore: warm1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunVia(r1, p, nil); err != nil {
		t.Fatal(err)
	}

	// Process 2: a sibling point warm-starts from the persisted donor
	// into a result cache.
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed = 42
	warm2, err := runcache.Open(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fidelity.New(fidelity.Config{Mode: fidelity.ModeDES, Warm: fidelity.WarmFull, WarmStore: warm2, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	version, _, err := r2.Plan(p2)
	if err != nil {
		t.Fatal(err)
	}
	if version == core.SimVersion {
		t.Fatalf("sibling point planned pure DES (version %q); no warm start happened", version)
	}
	if runcache.Key(version, p2.Canonical()) == p2.CacheKey() {
		t.Fatal("warm version salt produced the pure-DES cache key")
	}
	if _, err := core.RunVia(r2, p2, store); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses != 1 {
		t.Fatalf("warm run: misses=%d, want 1", st.Misses)
	}

	// A pure-DES lookup of the same Params must not see the warm entry.
	if _, err := core.RunCached(p2, store); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits != 0 {
		t.Fatalf("pure-DES lookup hit a warm-started entry: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("misses=%d, want 2 (warm and DES entries are distinct)", st.Misses)
	}
}
