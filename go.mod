module hic

go 1.22
