// Package hic_test is the benchmark harness that regenerates every table
// and figure of the paper (and the §4 extension ablations). Each
// benchmark runs its experiment sweep and reports the headline numbers
// as custom benchmark metrics; run with -v to also print the full table.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig3 -v          # includes the rendered table
//
// The sweeps use the Quick fidelity (shorter windows, fewer points) so a
// full -bench=. pass stays in benchmark-friendly territory; cmd/hicfigs
// runs the full-fidelity versions.
package hic_test

import (
	"fmt"
	"testing"

	"hic/internal/cluster"
	"hic/internal/core"
	"hic/internal/experiments"
	"hic/internal/sim"
)

var benchOpts = experiments.Options{Seed: 1, Quick: true}

// runExperiment executes one experiment per benchmark iteration and
// reports metrics extracted by report.
func runExperiment(b *testing.B, fn func(experiments.Options) (*experiments.Table, error),
	report func(*testing.B, *experiments.Table)) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil {
		report(b, last)
		if testing.Verbose() {
			b.Log("\n" + last.Render())
		}
	}
}

// colValue pulls a float cell out of a table by column name.
func colValue(b *testing.B, t *experiments.Table, row int, col string) float64 {
	b.Helper()
	for i, c := range t.Columns {
		if c == col {
			var v float64
			if _, err := fmt.Sscan(t.Rows[row][i], &v); err != nil {
				b.Fatalf("cell %q: %v", t.Rows[row][i], err)
			}
			return v
		}
	}
	b.Fatalf("no column %q", col)
	return 0
}

// BenchmarkFig3IOMMUSweep regenerates Figure 3: throughput, drops, and
// IOTLB misses per packet vs receiver cores, IOMMU on vs off.
func BenchmarkFig3IOMMUSweep(b *testing.B) {
	runExperiment(b, experiments.Fig3, func(b *testing.B, t *experiments.Table) {
		last := len(t.Rows) - 1
		b.ReportMetric(colValue(b, t, last, "on_gbps"), "on-gbps")
		b.ReportMetric(colValue(b, t, last, "off_gbps"), "off-gbps")
		b.ReportMetric(colValue(b, t, last, "on_misses_per_pkt"), "misses/pkt")
	})
}

// BenchmarkFig4Hugepages regenerates Figure 4: the hugepage ablation.
func BenchmarkFig4Hugepages(b *testing.B) {
	runExperiment(b, experiments.Fig4, func(b *testing.B, t *experiments.Table) {
		last := len(t.Rows) - 1
		b.ReportMetric(colValue(b, t, last, "huge_gbps"), "huge-gbps")
		b.ReportMetric(colValue(b, t, last, "4k_gbps"), "4k-gbps")
	})
}

// BenchmarkFig5RxRegion regenerates Figure 5: the Rx memory-region sweep.
func BenchmarkFig5RxRegion(b *testing.B) {
	runExperiment(b, experiments.Fig5, func(b *testing.B, t *experiments.Table) {
		last := len(t.Rows) - 1
		b.ReportMetric(colValue(b, t, 0, "on_gbps"), "4MB-gbps")
		b.ReportMetric(colValue(b, t, last, "on_gbps"), "16MB-gbps")
	})
}

// BenchmarkFig6MemoryAntagonist regenerates Figure 6: the STREAM sweep.
func BenchmarkFig6MemoryAntagonist(b *testing.B) {
	runExperiment(b, experiments.Fig6, func(b *testing.B, t *experiments.Table) {
		last := len(t.Rows) - 1
		b.ReportMetric(colValue(b, t, 0, "on_gbps"), "idle-gbps")
		b.ReportMetric(colValue(b, t, last, "on_gbps"), "antag-gbps")
		b.ReportMetric(colValue(b, t, last, "on_membw_gbps"), "membw-GBps")
	})
}

// BenchmarkFig1Cluster regenerates Figure 1: the fleet scatter.
func BenchmarkFig1Cluster(b *testing.B) {
	var stats cluster.Stats
	for i := 0; i < b.N; i++ {
		points, err := cluster.Run(cluster.Config{
			Hosts: 32, Seed: 1,
			Warmup:  3 * sim.Millisecond,
			Measure: 5 * sim.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats = cluster.Summarize(points)
	}
	b.ReportMetric(stats.Pearson, "pearson")
	b.ReportMetric(float64(stats.DroppingHosts), "dropping-hosts")
	b.ReportMetric(float64(stats.LowUtilDropping), "lowutil-dropping")
}

// BenchmarkExtTargetDelay ablates Swift's host-delay target.
func BenchmarkExtTargetDelay(b *testing.B) {
	runExperiment(b, experiments.ExtTargetDelay, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "drop_pct"), "low-target-drop%")
		b.ReportMetric(colValue(b, t, len(t.Rows)-1, "drop_pct"), "high-target-drop%")
	})
}

// BenchmarkExtNICBuffer ablates the NIC input-buffer size.
func BenchmarkExtNICBuffer(b *testing.B) {
	runExperiment(b, experiments.ExtNICBuffer, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "drop_pct"), "small-buf-drop%")
		b.ReportMetric(colValue(b, t, len(t.Rows)-1, "drop_pct"), "big-buf-drop%")
	})
}

// BenchmarkExtATS ablates the ATS-style device TLB (§4(a)).
func BenchmarkExtATS(b *testing.B) {
	runExperiment(b, experiments.ExtATS, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "gbps"), "no-ats-gbps")
		b.ReportMetric(colValue(b, t, len(t.Rows)-1, "gbps"), "ats-gbps")
	})
}

// BenchmarkExtCXL ablates root-complex latency (§4(b)).
func BenchmarkExtCXL(b *testing.B) {
	runExperiment(b, experiments.ExtCXL, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "gbps"), "pcie-gbps")
		b.ReportMetric(colValue(b, t, len(t.Rows)-1, "gbps"), "cxl-gbps")
	})
}

// BenchmarkExtMBA ablates memory-bandwidth QoS for the NIC (§4(c)).
func BenchmarkExtMBA(b *testing.B) {
	runExperiment(b, experiments.ExtMBA, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "gbps"), "fcfs-gbps")
		b.ReportMetric(colValue(b, t, len(t.Rows)-1, "gbps"), "reserved-gbps")
	})
}

// BenchmarkExtSubRTT ablates the sub-RTT host congestion signal (§4).
func BenchmarkExtSubRTT(b *testing.B) {
	runExperiment(b, experiments.ExtSubRTT, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "drop_pct"), "swift-drop%")
		b.ReportMetric(colValue(b, t, 1, "drop_pct"), "subrtt-drop%")
	})
}

// BenchmarkExtCCCompare compares Swift with the TCP-like baselines.
func BenchmarkExtCCCompare(b *testing.B) {
	runExperiment(b, experiments.ExtCCCompare, func(b *testing.B, t *experiments.Table) {
		b.ReportMetric(colValue(b, t, 0, "gbps"), "swift-gbps")
		b.ReportMetric(colValue(b, t, 1, "gbps"), "dctcp-gbps")
	})
}

// BenchmarkSinglePoint measures raw simulator speed at the paper's
// baseline operating point (12 cores, IOMMU on): wall time per simulated
// millisecond.
func BenchmarkSinglePoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams(12)
		p.Warmup = sim.Millisecond
		p.Measure = 4 * sim.Millisecond
		if _, err := core.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
