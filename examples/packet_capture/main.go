// packet_capture taps the receiver NIC during a congested run, writes
// every arriving packet in the wire capture format, then reads the
// capture back and reports per-queue arrival statistics — the full
// capture → decode → analyze loop the wire package provides.
//
//	go run ./examples/packet_capture
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"

	"hic/internal/core"
	"hic/internal/sim"
	"hic/internal/wire"
)

func main() {
	p := core.DefaultParams(8)
	p.Senders = 16
	p.Warmup = 2 * sim.Millisecond
	p.Measure = 4 * sim.Millisecond

	tb, err := p.Build()
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	cw := tb.EnableCapture(&buf)
	res := tb.Run(p.Warmup, p.Measure)

	fmt.Printf("captured %d packets (%.1f MB) during a %.1f Gbps run\n",
		cw.Count(), float64(buf.Len())/1e6, res.AppThroughputGbps)

	// Decode the capture and aggregate per queue.
	perQueue := map[int]int{}
	var interarrival []sim.Duration
	var last sim.Time
	r := wire.NewReader(&buf)
	for {
		pk, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		perQueue[pk.Queue]++
		if last > 0 {
			interarrival = append(interarrival, pk.NICArrival.Sub(last))
		}
		last = pk.NICArrival
	}
	fmt.Println("\npackets per receive queue:")
	for q := 0; q < p.Threads; q++ {
		fmt.Printf("  queue %2d: %6d\n", q, perQueue[q])
	}
	var mean float64
	for _, d := range interarrival {
		mean += float64(d)
	}
	if len(interarrival) > 0 {
		mean /= float64(len(interarrival))
	}
	fmt.Printf("\nmean interarrival: %.0f ns (≈%.1f Gbps of 4452B wire packets)\n",
		mean, 4452*8/mean)
}
