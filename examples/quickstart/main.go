// Quickstart: build the paper's testbed at one operating point and print
// the headline measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hic/internal/core"
)

func main() {
	// The paper's §3.1 setup at 12 receiver cores: 40 senders issue
	// 16 KB remote reads over 4 KB-MTU packets, Swift congestion
	// control, IOMMU enabled with 2 MB hugepage mappings.
	params := core.DefaultParams(12)

	res, err := core.Run(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("host interconnect congestion — quickstart")
	fmt.Printf("  receiver cores:       %d\n", params.Threads)
	fmt.Printf("  app throughput:       %.1f Gbps (of %.1f achievable)\n",
		res.AppThroughputGbps, core.MaxAchievable.Gbps())
	fmt.Printf("  host drop rate:       %.2f %%\n", res.DropRatePct)
	fmt.Printf("  IOTLB misses/packet:  %.2f\n", res.IOTLBMissesPerPacket)
	fmt.Printf("  host delay p50/p99:   %v / %v\n", res.HostDelayP50, res.HostDelayP99)

	// The same point with memory protection disabled: the NIC-to-CPU
	// path is no longer translation-limited.
	params.IOMMU = false
	off, err := core.Run(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  with IOMMU off:       %.1f Gbps, %.2f %% drops\n",
		off.AppThroughputGbps, off.DropRatePct)
	fmt.Printf("  IOMMU-induced loss:   %.1f Gbps\n",
		off.AppThroughputGbps-res.AppThroughputGbps)
}
