// iommu_sweep walks through the paper's §3.1 characterization with the
// public API: the receiver-core sweep that exposes the IOTLB working-set
// knee, and the analytical Little's-law bound next to the simulation.
//
//	go run ./examples/iommu_sweep
package main

import (
	"fmt"
	"log"

	"hic/internal/core"
	"hic/internal/model"
	"hic/internal/sim"
)

func main() {
	fmt.Println("IOMMU-induced host congestion (§3.1)")
	fmt.Println()
	fmt.Printf("IOTLB working set per thread: %d entries (12 MB / 2 MB hugepages + metadata pools)\n",
		model.IOTLBWorkingSet(1, 12<<20, 2<<20, 10))
	fmt.Printf("the 128-entry IOTLB overflows above %d threads\n\n", 128/16)

	fmt.Printf("%6s  %9s  %9s  %9s  %7s  %11s\n",
		"cores", "on Gbps", "off Gbps", "model", "drop %", "misses/pkt")
	for _, threads := range []int{4, 8, 10, 12, 16} {
		on := core.DefaultParams(threads)
		on.Warmup, on.Measure = 10*sim.Millisecond, 15*sim.Millisecond
		off := on
		off.IOMMU = false
		rs, err := core.RunMany([]core.Params{on, off})
		if err != nil {
			log.Fatal(err)
		}
		ron, roff := rs[0], rs[1]
		modeled := "-"
		if threads >= 10 {
			b, err := core.ModeledThroughput(on, ron.IOTLBMissesPerPacket)
			if err != nil {
				log.Fatal(err)
			}
			modeled = fmt.Sprintf("%.1f", b.Gbps())
		}
		fmt.Printf("%6d  %9.1f  %9.1f  %9s  %7.2f  %11.2f\n",
			threads, ron.AppThroughputGbps, roff.AppThroughputGbps, modeled,
			ron.DropRatePct, ron.IOTLBMissesPerPacket)
	}

	fmt.Println()
	fmt.Printf("why congestion control stays blind: a 1 MB NIC buffer drains in\n")
	fmt.Printf("%v at 88.8 Gbps — under Swift's 100 µs host target — so the\n",
		model.EffectiveRxDelayBudget(1<<20, sim.Gbps(88.8)).Round(sim.Microsecond))
	fmt.Printf("protocol cannot react above ≈%.0f Gbps of app throughput.\n",
		core.BlindThreshold.Gbps())
}
