// memory_antagonist reproduces the §3.2 scenario with the public API:
// STREAM instances contend the receiver's memory bus until the NIC's DMA
// writes are starved — drops and throughput collapse even though the
// access link is far from saturated.
//
//	go run ./examples/memory_antagonist
package main

import (
	"fmt"
	"log"

	"hic/internal/core"
	"hic/internal/sim"
)

func main() {
	fmt.Println("memory-bus-induced host congestion (§3.2)")
	fmt.Println("12 receiver cores, IOMMU on, STREAM antagonist sweep")
	fmt.Println()
	fmt.Printf("%12s  %9s  %12s  %7s  %9s\n",
		"antag cores", "app Gbps", "membw GB/s", "drop %", "link util")
	for _, cores := range []int{0, 4, 8, 12, 15} {
		p := core.DefaultParams(12)
		p.AntagonistCores = cores
		p.Warmup, p.Measure = 10*sim.Millisecond, 15*sim.Millisecond
		res, err := core.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d  %9.1f  %12.1f  %7.2f  %8.1f%%\n",
			cores, res.AppThroughputGbps, res.MemoryBandwidthGBps,
			res.DropRatePct, res.LinkUtilization*100)
	}

	fmt.Println()
	fmt.Println("note the last rows: the host drops packets while its access link")
	fmt.Println("runs well below line rate — the memory controller serves CPU and")
	fmt.Println("NIC first-come-first-served, and the CPUs win.")
}
