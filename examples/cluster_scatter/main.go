// cluster_scatter regenerates a small version of Figure 1 with the
// cluster API: a fleet of simulated hosts with heterogeneous workloads,
// summarized into the paper's two claims.
//
//	go run ./examples/cluster_scatter
package main

import (
	"fmt"
	"log"

	"hic/internal/cluster"
	"hic/internal/sim"
)

func main() {
	cfg := cluster.Config{
		Hosts:   60,
		Seed:    7,
		Warmup:  5 * sim.Millisecond,
		Measure: 8 * sim.Millisecond,
	}
	points, err := cluster.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cluster.Scatter(points, 64, 14))
	s := cluster.Summarize(points)
	fmt.Printf("\nhosts=%d dropping=%d below-60%%-util-dropping=%d pearson=%.2f\n",
		s.Hosts, s.DroppingHosts, s.LowUtilDropping, s.Pearson)
	fmt.Println("\nFigure 1's claims:")
	fmt.Printf("  1. drop rate correlates positively with utilization: r=%.2f\n", s.Pearson)
	fmt.Printf("  2. drops occur even at low utilization: %d hosts below 60%%\n", s.LowUtilDropping)
}
