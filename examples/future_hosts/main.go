// future_hosts exercises the §4 "looking forward" directions as runnable
// ablations: ATS-style device translation, CXL-like link latency,
// MBA-style memory QoS for the NIC, and a sub-RTT host congestion
// signal.
//
//	go run ./examples/future_hosts
package main

import (
	"fmt"
	"log"

	"hic/internal/core"
	"hic/internal/sim"
)

func run(name string, p core.Params) {
	p.Warmup, p.Measure = 10*sim.Millisecond, 15*sim.Millisecond
	res, err := core.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s  %6.1f Gbps  %6.2f %% drops  p99 %v\n",
		name, res.AppThroughputGbps, res.DropRatePct, res.HostDelayP99)
}

func main() {
	fmt.Println("rethinking hosts, signals, and responses (§4)")
	fmt.Println()

	fmt.Println("— host architecture: ATS-style device TLB (16 cores) —")
	base16 := core.DefaultParams(16)
	run("IOMMU, 128-entry IOTLB", base16)
	ats := base16
	ats.DeviceTLBEntries = 1024
	run("+ 1024-entry device TLB (ATS)", ats)

	fmt.Println()
	fmt.Println("— host architecture: CXL-like link latency (16 cores) —")
	cxl := base16
	cxl.LinkLatencyScale = 0.5
	run("root-complex latency halved (CXL)", cxl)

	fmt.Println()
	fmt.Println("— memory QoS: MBA-style NIC reservation (12 cores, 12 antagonists) —")
	noisy := core.DefaultParams(12)
	noisy.AntagonistCores = 12
	run("FCFS memory bus", noisy)
	mba := noisy
	mba.MemoryIOReservedShare = 0.15
	run("+ 15% reserved for the NIC (MBA)", mba)

	fmt.Println()
	fmt.Println("— congestion response: sub-RTT host signal (12 cores) —")
	blind := core.DefaultParams(12)
	run("Swift, 100µs host target", blind)
	subrtt := blind
	subrtt.SubRTTHostECN = true
	run("+ sub-RTT host ECN", subrtt)
}
